//! Lease-based multi-worker campaigns: N peer processes shard one grid.
//!
//! There is no coordinator. Workers rendezvous on a shared `--state-dir`:
//! `charlie submit --workers N` writes a **manifest** (`<token>.manifest`,
//! the submit request verbatim) next to the campaign journal
//! (`<token>.ckpt`), and every `charlie serve --worker` polling that
//! directory claims cells by appending CRC-framed, fsync'd lease records
//! to the journal itself — the same file, the same framing, and the same
//! first-wins read rules a single daemon already uses, so a campaign can
//! be driven by one daemon today and a fleet tomorrow.
//!
//! ## The claim protocol
//!
//! 1. **Scan** the journal ([`scan_shared`]): published cells, plus a
//!    lease table mapping each unpublished cell to its newest generation,
//!    holder, and renewed deadline.
//! 2. **Pick** an unpublished cell that is unleased or whose deadline has
//!    passed, and **append** a claim (`gen = newest + 1`, deadline
//!    `now + lease_ms`), fsync'd — a claim that has not reached disk does
//!    not exist.
//! 3. **Verify** by re-scanning: concurrent claimants can both append the
//!    same generation, and the winner is the *first* record in file order
//!    (O_APPEND makes file order a total order). Losers walk away and
//!    pick another cell; nothing blocks.
//! 4. **Run** the cell while a heartbeat thread appends renewals every
//!    `lease_ms / 3`. A worker that dies (SIGKILL, wedge, frozen writer)
//!    stops renewing; once the deadline passes any peer reclaims the cell
//!    at the next generation.
//! 5. **Publish** behind a fencing check: re-scan, and drop the result if
//!    the cell was published meanwhile or its newest generation exceeds
//!    ours (we were presumed dead and superseded — a zombie's late result
//!    is refused). Even the residual race — two fencing checks passing
//!    before either append lands — only duplicates a *byte-identical*
//!    deterministic summary, and every reader keeps the first occurrence,
//!    so publication stays exactly-once per cell.
//!
//! Failure is modeled as worker death, never as protocol repair: a lease
//! or journal append that errors (including a chaos-frozen writer) kills
//! the worker, its heartbeats stop, and the fleet reclaims its cells.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use charlie::chaos;
use charlie::checkpoint::{
    compact_shared, encode_lease, encode_summary, ensure_shared, frame_line, scan_shared,
    LeaseEvent, LeaseRecord, SharedAppender, SharedScan,
};
use charlie::retry::RetryPolicy;
use charlie::wire;
use charlie::{execute_cell, Experiment, RunConfig, RunError, RunSummary};

use crate::{campaign_key, cell_config, decode_submit, install_sigterm_handler, SIGTERM_DRAIN};

/// One worker process (or in-process worker, in tests).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// The rendezvous directory: manifests, journals, health, receipts.
    pub state_dir: PathBuf,
    /// Worker id, unique within the fleet (default `w<pid>`); appears in
    /// lease records, health files, and draining receipts.
    pub id: String,
    /// Lease duration in milliseconds: how long a silent worker keeps its
    /// cells before peers may reclaim them. Heartbeats renew at a third of
    /// this, so one missed beat never costs a live worker its lease.
    pub lease_ms: u64,
    /// Idle poll interval in milliseconds.
    pub poll_ms: u64,
    /// Concurrent claim threads within this worker.
    pub jobs: usize,
    /// Exit once every discovered campaign is fully published and no
    /// manifests remain (the spawn-and-join mode); a service worker keeps
    /// polling for new manifests instead.
    pub exit_when_idle: bool,
    /// Test hook simulating SIGKILL at the adversarial boundary: die —
    /// heartbeats and all — immediately after the Nth claim lands and
    /// verifies, leaving a durable claim that will never publish.
    pub die_after_claims: Option<u64>,
}

impl WorkerConfig {
    /// Defaults for a worker over `state_dir`.
    pub fn new(state_dir: impl Into<PathBuf>) -> WorkerConfig {
        WorkerConfig {
            state_dir: state_dir.into(),
            id: format!("w{}", std::process::id()),
            lease_ms: 3000,
            poll_ms: 100,
            jobs: 1,
            exit_when_idle: false,
            die_after_claims: None,
        }
    }
}

/// What one worker did before exiting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Claims that landed and verified as won (includes reclaims).
    pub claimed: u64,
    /// Cells this worker published.
    pub completed: u64,
    /// Claims that took over an expired peer lease.
    pub reclaimed: u64,
    /// Results dropped at the fencing check (superseded or already
    /// published by a peer).
    pub fenced: u64,
    /// Exited through a SIGTERM drain (receipt written).
    pub drained: bool,
}

/// A campaign as the fleet sees it: the decoded manifest plus the derived
/// identity that names its journal.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Resumable token (`c…`), also the journal/manifest file stem.
    pub token: String,
    /// Journal config key (refused on mismatch when joining).
    pub key: String,
    /// Per-cell config (deadline-independent, like the daemon's).
    pub cell_cfg: RunConfig,
    /// The grid, in request order; lease records index into this.
    pub cells: Vec<Experiment>,
    /// The shared campaign journal.
    pub journal: PathBuf,
    /// The manifest file itself.
    pub path: PathBuf,
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

fn io_err(path: &Path, msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
}

/// Decodes a manifest file (one submit-request line) into the campaign it
/// names. The token is derived from the request, exactly as the daemon
/// derives it — the filename is just a rendezvous convention.
pub fn load_manifest(path: &Path) -> io::Result<Manifest> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    let line = text.lines().find(|l| !l.trim().is_empty()).ok_or_else(|| io_err(path, "empty manifest"))?;
    let v = wire::parse(line.trim()).map_err(|e| io_err(path, e))?;
    let spec = decode_submit(0, &v).map_err(|e| io_err(path, e))?;
    let cell_cfg = cell_config(&spec.cfg);
    let (key, token) = campaign_key(&cell_cfg, &spec.cells);
    let journal = path.with_file_name(format!("{token}.ckpt"));
    Ok(Manifest { token, key, cell_cfg, cells: spec.cells, journal, path: path.to_path_buf() })
}

/// Publishes a campaign into `state_dir` for workers to find: creates the
/// journal with its durable header, then the manifest (atomically — a
/// worker never sees a torn manifest). `request_line` is the submit
/// request exactly as [`crate::client::SubmitRequest::encode`] renders it,
/// so daemon submissions and fleet submissions resolve identical tokens.
pub fn write_manifest(state_dir: &Path, request_line: &str) -> io::Result<Manifest> {
    std::fs::create_dir_all(state_dir)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", state_dir.display())))?;
    let v = wire::parse(request_line.trim())
        .map_err(|e| io_err(state_dir, format!("submit request: {e}")))?;
    let spec = decode_submit(0, &v).map_err(|e| io_err(state_dir, format!("submit request: {e}")))?;
    let cell_cfg = cell_config(&spec.cfg);
    let (key, token) = campaign_key(&cell_cfg, &spec.cells);
    let journal = state_dir.join(format!("{token}.ckpt"));
    ensure_shared(&journal, &key)?;
    let path = state_dir.join(format!("{token}.manifest"));
    let mut body = String::with_capacity(request_line.len() + 1);
    body.push_str(request_line.trim());
    body.push('\n');
    chaos::write_atomic(&path, body.as_bytes(), "manifest")?;
    Ok(Manifest { token, key, cell_cfg, cells: spec.cells, journal, path })
}

/// `(published, total)` for a campaign — what a joiner polls.
pub fn campaign_progress(m: &Manifest) -> io::Result<(usize, usize)> {
    let scan = scan_shared(&m.journal, Some(&m.key))?;
    Ok((published_cells(m, &scan).len(), m.cells.len()))
}

/// The campaign's summaries in request order; `None` holes for cells not
/// yet published.
pub fn collect(m: &Manifest) -> io::Result<Vec<Option<RunSummary>>> {
    let scan = scan_shared(&m.journal, Some(&m.key))?;
    let by_exp: HashMap<Experiment, &RunSummary> =
        scan.summaries.iter().map(|s| (s.experiment, s)).collect();
    Ok(m.cells.iter().map(|exp| by_exp.get(exp).map(|s| (*s).clone())).collect())
}

/// End-of-campaign cleanup, run by the joiner once the fleet is quiesced:
/// compacts the journal (dropping superseded lease generations and the
/// lease trails of published cells) and removes the manifest so idle
/// workers stop rediscovering the campaign.
pub fn finalize(m: &Manifest) -> io::Result<()> {
    compact_shared(&m.journal, &m.key, &m.cells)?;
    match std::fs::remove_file(&m.path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io::Error::new(e.kind(), format!("{}: {e}", m.path.display()))),
    }
}

/// Cell indices (into `m.cells`) already published.
fn published_cells(m: &Manifest, scan: &SharedScan) -> std::collections::HashSet<u64> {
    let index: HashMap<Experiment, u64> =
        m.cells.iter().enumerate().map(|(i, e)| (*e, i as u64)).collect();
    scan.summaries.iter().filter_map(|s| index.get(&s.experiment).copied()).collect()
}

/// A cell's newest lease: generation, holder, and the latest renewed
/// deadline of that generation.
#[derive(Clone, Debug, Default)]
struct CellLease {
    gen: u64,
    holder: String,
    deadline_ms: u64,
}

/// Folds the lease records (file order) into per-cell newest state.
/// First-wins at equal generation: a losing racer's claim never displaces
/// the holder, and only the holder's renewals extend the deadline.
fn lease_table(scan: &SharedScan) -> HashMap<u64, CellLease> {
    let mut table: HashMap<u64, CellLease> = HashMap::new();
    for l in &scan.leases {
        let e = table.entry(l.cell).or_default();
        if l.event.opens_generation() {
            if l.gen > e.gen {
                e.gen = l.gen;
                e.holder = l.worker.clone();
                e.deadline_ms = l.deadline_ms;
            }
        } else if l.gen == e.gen && l.worker == e.holder {
            e.deadline_ms = e.deadline_ms.max(l.deadline_ms);
        }
    }
    table
}

/// The generation's winner: the first gen-opening record in file order.
fn claim_winner<'a>(scan: &'a SharedScan, cell: u64, gen: u64) -> Option<&'a str> {
    scan.leases
        .iter()
        .find(|l| l.cell == cell && l.gen == gen && l.event.opens_generation())
        .map(|l| l.worker.as_str())
}

/// Per-campaign state shared by a worker's claim threads and its
/// heartbeat thread. The appenders are persistent for the campaign so a
/// one-shot chaos fault (`lease:torn@k`) fires once per process instead
/// of re-arming on every append.
struct Fleet<'a> {
    cfg: &'a WorkerConfig,
    m: &'a Manifest,
    lease_app: Mutex<SharedAppender>,
    out_app: Mutex<SharedAppender>,
    /// `(cell, gen)` leases this worker currently holds (being simulated).
    active: Mutex<Vec<(u64, u64)>>,
    claimed: AtomicU64,
    completed: AtomicU64,
    reclaimed: AtomicU64,
    fenced: AtomicU64,
    /// SIGKILL simulation fired ([`WorkerConfig::die_after_claims`]):
    /// everything stops, including heartbeats.
    dead: AtomicBool,
    /// Campaign fully published; the heartbeat thread may exit.
    done: AtomicBool,
    /// First fatal error out of any thread (a failed append = this worker
    /// is dead; peers will reclaim).
    failed: Mutex<Option<io::Error>>,
}

impl Fleet<'_> {
    fn draining(&self) -> bool {
        SIGTERM_DRAIN.load(Ordering::SeqCst)
    }

    fn stopping(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
            || self.done.load(Ordering::SeqCst)
            || self.failed.lock().unwrap().is_some()
    }

    fn fail(&self, e: io::Error) {
        self.failed.lock().unwrap().get_or_insert(e);
    }

    fn append_lease(&self, rec: &LeaseRecord) -> io::Result<()> {
        self.lease_app.lock().unwrap().append(&frame_line(&encode_lease(rec)))
    }

    fn write_health(&self, draining: bool) {
        let _ = write_health(
            self.cfg,
            &WorkerReport {
                claimed: self.claimed.load(Ordering::Relaxed),
                completed: self.completed.load(Ordering::Relaxed),
                reclaimed: self.reclaimed.load(Ordering::Relaxed),
                fenced: self.fenced.load(Ordering::Relaxed),
                drained: draining,
            },
        );
    }
}

/// One claim thread: scan → pick → claim → verify → run → fence → publish
/// until the campaign is published, the worker is draining, or it died.
fn claim_loop(fleet: &Fleet) {
    loop {
        if fleet.stopping() || fleet.draining() {
            return;
        }
        let scan = match scan_shared(&fleet.m.journal, Some(&fleet.m.key)) {
            Ok(scan) => scan,
            Err(e) => return fleet.fail(e),
        };
        let published = published_cells(fleet.m, &scan);
        if published.len() == fleet.m.cells.len() {
            fleet.done.store(true, Ordering::SeqCst);
            return;
        }
        let table = lease_table(&scan);
        let now = now_ms();
        let candidate = (0..fleet.m.cells.len() as u64).filter(|i| !published.contains(i)).find(
            |i| match table.get(i) {
                None => true,
                Some(l) => now > l.deadline_ms,
            },
        );
        let Some(cell) = candidate else {
            // Everything unpublished is validly leased (to peers, or to
            // this worker's other threads); wait for publishes or expiry.
            std::thread::sleep(Duration::from_millis(fleet.cfg.poll_ms));
            continue;
        };
        let prior = table.get(&cell).cloned().unwrap_or_default();
        let gen = prior.gen + 1;
        let event = if prior.gen == 0 { LeaseEvent::Claim } else { LeaseEvent::Reclaim };
        let rec = LeaseRecord {
            event,
            cell,
            worker: fleet.cfg.id.clone(),
            gen,
            deadline_ms: now_ms() + fleet.cfg.lease_ms,
        };
        if let Err(e) = fleet.append_lease(&rec) {
            return fleet.fail(e);
        }
        // Verify: first gen-opening record in file order wins the
        // generation. (A torn claim — chaos-injected or a real partial
        // write — simply fails to scan as ours, and we retry.)
        let verify = match scan_shared(&fleet.m.journal, Some(&fleet.m.key)) {
            Ok(scan) => scan,
            Err(e) => return fleet.fail(e),
        };
        if claim_winner(&verify, cell, gen) != Some(fleet.cfg.id.as_str()) {
            continue; // lost the race; pick another cell
        }
        fleet.claimed.fetch_add(1, Ordering::SeqCst);
        if event == LeaseEvent::Reclaim {
            fleet.reclaimed.fetch_add(1, Ordering::SeqCst);
        }
        if let Some(n) = fleet.cfg.die_after_claims {
            if fleet.claimed.load(Ordering::SeqCst) >= n {
                // Simulated SIGKILL at the worst boundary: the claim is
                // durable, the work will never happen, heartbeats stop.
                fleet.dead.store(true, Ordering::SeqCst);
                return;
            }
        }
        fleet.active.lock().unwrap().push((cell, gen));
        fleet.write_health(false);

        let exp = fleet.m.cells[cell as usize];
        let salt = RetryPolicy::salt(&format!("{exp}"));
        let outcome = RetryPolicy::TRANSIENT_IO
            .run(salt, RunError::is_transient_io, || execute_cell(&fleet.m.cell_cfg, exp));
        fleet.active.lock().unwrap().retain(|&(c, g)| (c, g) != (cell, gen));
        let summary = match outcome {
            Ok(summary) => summary,
            Err(e) => {
                // A deterministic cell failure would fail on every peer
                // too; retrying it around the fleet forever would livelock
                // the campaign. Model it as this worker's death and let
                // the joiner surface whatever the fleet could not finish.
                return fleet.fail(io::Error::other(format!("cell {exp} failed: {e}")));
            }
        };

        // Fencing: publish only while our generation is still the newest
        // and nobody published the cell meanwhile.
        let fence = match scan_shared(&fleet.m.journal, Some(&fleet.m.key)) {
            Ok(scan) => scan,
            Err(e) => return fleet.fail(e),
        };
        let superseded = lease_table(&fence).get(&cell).is_some_and(|l| l.gen > gen);
        if superseded || published_cells(fleet.m, &fence).contains(&cell) {
            fleet.fenced.fetch_add(1, Ordering::SeqCst);
            fleet.write_health(false);
            continue;
        }
        if let Err(e) = fleet.out_app.lock().unwrap().append(&frame_line(&encode_summary(&summary)))
        {
            return fleet.fail(e);
        }
        fleet.completed.fetch_add(1, Ordering::SeqCst);
        fleet.write_health(false);
    }
}

/// The heartbeat thread: every `lease_ms / 3`, renew every active lease
/// and refresh the health file. Dies with the worker — which is the point:
/// a SIGKILL'd worker's deadlines stop moving.
fn heartbeat_loop(fleet: &Fleet) {
    let beat = Duration::from_millis((fleet.cfg.lease_ms / 3).max(1));
    let tick = Duration::from_millis(fleet.cfg.poll_ms.min(fleet.cfg.lease_ms / 3).max(1));
    let mut last = std::time::Instant::now();
    loop {
        if fleet.stopping() {
            return;
        }
        std::thread::sleep(tick);
        if last.elapsed() < beat {
            continue;
        }
        last = std::time::Instant::now();
        let held: Vec<(u64, u64)> = fleet.active.lock().unwrap().clone();
        for (cell, gen) in held {
            let rec = LeaseRecord {
                event: LeaseEvent::Renew,
                cell,
                worker: fleet.cfg.id.clone(),
                gen,
                deadline_ms: now_ms() + fleet.cfg.lease_ms,
            };
            if let Err(e) = fleet.append_lease(&rec) {
                return fleet.fail(e);
            }
        }
        fleet.write_health(false);
    }
}

/// Accumulates one campaign's counters into the worker-lifetime report.
fn absorb(report: &mut WorkerReport, fleet_counts: &WorkerReport) {
    report.claimed += fleet_counts.claimed;
    report.completed += fleet_counts.completed;
    report.reclaimed += fleet_counts.reclaimed;
    report.fenced += fleet_counts.fenced;
}

fn health_path(cfg: &WorkerConfig) -> PathBuf {
    cfg.state_dir.join("workers").join(format!("{}.json", cfg.id))
}

fn write_health(cfg: &WorkerConfig, totals: &WorkerReport) -> io::Result<()> {
    let dir = cfg.state_dir.join("workers");
    std::fs::create_dir_all(&dir)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
    let mut s = String::from("{");
    wire::push_str_field(&mut s, "worker", &cfg.id);
    s.push_str(&format!(
        "\"pid\":{},\"draining\":{},\"last_heartbeat_ms\":{},\"lease_ms\":{},\
         \"claimed\":{},\"completed\":{},\"reclaimed\":{},\"fenced\":{}}}",
        std::process::id(),
        u64::from(totals.drained),
        now_ms(),
        cfg.lease_ms,
        totals.claimed,
        totals.completed,
        totals.reclaimed,
        totals.fenced,
    ));
    chaos::write_atomic(&health_path(cfg), s.as_bytes(), "health")
}

/// Writes the draining receipt: which peers were alive (fresh heartbeats)
/// when this worker left, so an operator reading `receipts/` can tell a
/// clean handoff from a fleet that died with it.
fn write_receipt(cfg: &WorkerConfig, totals: &WorkerReport) -> io::Result<()> {
    let dir = cfg.state_dir.join("receipts");
    std::fs::create_dir_all(&dir)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
    let mut survivors: Vec<String> = read_health_files(&cfg.state_dir)
        .into_iter()
        .filter(|h| h.worker != cfg.id && now_ms().saturating_sub(h.last_heartbeat_ms) < 2 * h.lease_ms)
        .map(|h| h.worker)
        .collect();
    survivors.sort();
    let mut s = String::from("{");
    wire::push_str_field(&mut s, "worker", &cfg.id);
    s.push_str(&format!(
        "\"drained_at_ms\":{},\"completed\":{},\"survivors\":[",
        now_ms(),
        totals.completed
    ));
    for (i, w) in survivors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(w);
        s.push('"');
    }
    s.push_str("]}");
    chaos::write_atomic(&dir.join(format!("{}.json", cfg.id)), s.as_bytes(), "health")
}

/// Runs a worker until drain, death, or (with
/// [`WorkerConfig::exit_when_idle`]) until no campaign needs it.
pub fn run_worker(cfg: &WorkerConfig) -> io::Result<WorkerReport> {
    install_sigterm_handler();
    std::fs::create_dir_all(&cfg.state_dir).map_err(|e| {
        io::Error::new(e.kind(), format!("creating {}: {e}", cfg.state_dir.display()))
    })?;
    let mut report = WorkerReport::default();
    write_health(cfg, &report)?;
    loop {
        if SIGTERM_DRAIN.load(Ordering::SeqCst) {
            report.drained = true;
            write_health(cfg, &report)?;
            write_receipt(cfg, &report)?;
            return Ok(report);
        }
        let mut manifests: Vec<PathBuf> = match std::fs::read_dir(&cfg.state_dir) {
            Ok(dir) => dir
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "manifest"))
                .collect(),
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("{}: {e}", cfg.state_dir.display()),
                ))
            }
        };
        manifests.sort();
        let mut all_done = true;
        for path in &manifests {
            let m = match load_manifest(path) {
                Ok(m) => m,
                // The joiner may remove (or still be renaming) a manifest
                // under us; skip and re-poll rather than dying.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let before = WorkerReport {
                claimed: report.claimed,
                completed: report.completed,
                reclaimed: report.reclaimed,
                fenced: report.fenced,
                drained: false,
            };
            // Seed the campaign counters from the lifetime report so
            // health files show lifetime totals.
            let done = {
                let fleet_report = run_campaign_with_totals(cfg, &m, &before)?;
                absorb(&mut report, &fleet_report.0);
                if fleet_report.1 {
                    // die_after_claims fired: the worker is "dead" — stop
                    // touching the state dir entirely, like a SIGKILL.
                    return Ok(report);
                }
                fleet_report.2
            };
            all_done &= done;
        }
        if cfg.exit_when_idle && all_done {
            write_health(cfg, &report)?;
            return Ok(report);
        }
        write_health(cfg, &report)?;
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }
}

/// [`run_campaign`] wrapper threading lifetime totals into the health
/// file: returns (campaign counters, died, campaign complete).
fn run_campaign_with_totals(
    cfg: &WorkerConfig,
    m: &Manifest,
    lifetime: &WorkerReport,
) -> io::Result<(WorkerReport, bool, bool)> {
    ensure_shared(&m.journal, &m.key)?;
    let fleet = Fleet {
        cfg,
        m,
        lease_app: Mutex::new(SharedAppender::open(&m.journal, "lease")?),
        out_app: Mutex::new(SharedAppender::open(&m.journal, "journal")?),
        active: Mutex::new(Vec::new()),
        claimed: AtomicU64::new(lifetime.claimed),
        completed: AtomicU64::new(lifetime.completed),
        reclaimed: AtomicU64::new(lifetime.reclaimed),
        fenced: AtomicU64::new(lifetime.fenced),
        dead: AtomicBool::new(false),
        done: AtomicBool::new(false),
        failed: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.max(1) {
            scope.spawn(|| claim_loop(&fleet));
        }
        scope.spawn(|| heartbeat_loop(&fleet));
    });
    if let Some(e) = fleet.failed.lock().unwrap().take() {
        fleet.write_health(false);
        return Err(e);
    }
    let counts = WorkerReport {
        claimed: fleet.claimed.load(Ordering::SeqCst) - lifetime.claimed,
        completed: fleet.completed.load(Ordering::SeqCst) - lifetime.completed,
        reclaimed: fleet.reclaimed.load(Ordering::SeqCst) - lifetime.reclaimed,
        fenced: fleet.fenced.load(Ordering::SeqCst) - lifetime.fenced,
        drained: false,
    };
    Ok((counts, fleet.dead.load(Ordering::SeqCst), fleet.done.load(Ordering::SeqCst)))
}

/// One parsed `workers/<id>.json` health file.
#[derive(Clone, Debug)]
struct Health {
    worker: String,
    pid: u64,
    draining: bool,
    last_heartbeat_ms: u64,
    lease_ms: u64,
    claimed: u64,
    completed: u64,
    reclaimed: u64,
    fenced: u64,
}

fn read_health_files(state_dir: &Path) -> Vec<Health> {
    let dir = state_dir.join("workers");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.filter_map(Result::ok) {
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let Ok(v) = wire::parse(text.trim()) else { continue };
        let num = |name: &str| v.opt_field(name).and_then(|n| n.num().ok()).unwrap_or(0);
        let Some(worker) = v.opt_field("worker").and_then(|w| w.str().ok()) else { continue };
        out.push(Health {
            worker: worker.to_owned(),
            pid: num("pid"),
            draining: num("draining") != 0,
            last_heartbeat_ms: num("last_heartbeat_ms"),
            lease_ms: num("lease_ms"),
            claimed: num("claimed"),
            completed: num("completed"),
            reclaimed: num("reclaimed"),
            fenced: num("fenced"),
        });
    }
    out.sort_by(|a, b| a.worker.cmp(&b.worker));
    out
}

/// Per-holder live/expired lease counts across every campaign manifest in
/// the state dir (only unpublished cells count — a published cell's stale
/// lease trail is inert until compaction sweeps it).
fn lease_counts(state_dir: &Path) -> HashMap<String, (u64, u64)> {
    let mut counts: HashMap<String, (u64, u64)> = HashMap::new();
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return counts;
    };
    let now = now_ms();
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "manifest") {
            continue;
        }
        let Ok(m) = load_manifest(&path) else { continue };
        let Ok(scan) = scan_shared(&m.journal, Some(&m.key)) else { continue };
        let published = published_cells(&m, &scan);
        for (cell, lease) in lease_table(&scan) {
            if published.contains(&cell) {
                continue;
            }
            let slot = counts.entry(lease.holder).or_insert((0, 0));
            if now > lease.deadline_ms {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
    }
    counts
}

/// The `workers` section of `serve --stats`: one entry per health file,
/// with heartbeat age, liveness (heartbeat younger than two lease
/// periods), lifetime counters, and current live/expired lease counts.
/// `None` when no worker has ever registered, so a workerless daemon's
/// stats are unchanged.
pub fn render_workers_section(state_dir: &Path) -> Option<String> {
    let health = read_health_files(state_dir);
    if health.is_empty() {
        return None;
    }
    let leases = lease_counts(state_dir);
    let now = now_ms();
    let mut live_total = 0u64;
    let mut detail = String::from("[");
    for (i, h) in health.iter().enumerate() {
        let age = now.saturating_sub(h.last_heartbeat_ms);
        let live = !h.draining && age < 2 * h.lease_ms.max(1);
        live_total += u64::from(live);
        let (lease_live, lease_expired) = leases.get(&h.worker).copied().unwrap_or((0, 0));
        if i > 0 {
            detail.push(',');
        }
        let mut entry = String::from("{");
        wire::push_str_field(&mut entry, "worker", &h.worker);
        entry.push_str(&format!(
            "\"pid\":{},\"live\":{},\"draining\":{},\"heartbeat_age_ms\":{},\
             \"leases_live\":{},\"leases_expired\":{},\
             \"claimed\":{},\"completed\":{},\"reclaimed\":{},\"fenced\":{}}}",
            h.pid,
            u64::from(live),
            u64::from(h.draining),
            age,
            lease_live,
            lease_expired,
            h.claimed,
            h.completed,
            h.reclaimed,
            h.fenced,
        ));
        detail.push_str(&entry);
    }
    detail.push(']');
    Some(format!("{{\"total\":{},\"live\":{live_total},\"detail\":{detail}}}", health.len()))
}
