//! Client side of the serve protocol: request encoding, frame decoding,
//! and blocking helpers over one TCP connection per request.
//!
//! The CLI (`charlie submit`, `charlie serve --stats`) and the service
//! tests both speak through this module, so a protocol change breaks them
//! together at compile time instead of silently diverging.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use charlie::checkpoint::decode_summary_value;
use charlie::prefetch::HwPrefetchConfig;
use charlie::wire;
use charlie::{Experiment, Protocol, RunSummary, SamplingConfig};

/// Which cells a submit asks for.
#[derive(Clone, Debug)]
pub enum Grid {
    /// The full paper grid (the daemon expands it; what
    /// `all_experiments` simulates).
    Paper,
    /// An explicit cell list, streamed back in this order.
    Cells(Vec<Experiment>),
}

/// One campaign submission.
#[derive(Clone, Debug)]
pub struct SubmitRequest {
    pub grid: Grid,
    /// Processors; daemon default when `None`.
    pub procs: Option<usize>,
    /// References per processor; daemon default when `None`.
    pub refs: Option<usize>,
    /// Workload seed; daemon default when `None`.
    pub seed: Option<u64>,
    /// Per-request wall-clock deadline (ms); daemon default when `None`.
    pub deadline_ms: Option<u64>,
    /// Online hardware prefetcher; off when `None`.
    pub hw_prefetch: Option<HwPrefetchConfig>,
    /// Coherence protocol; the daemon default (Illinois) when `None`.
    pub protocol: Option<Protocol>,
    /// Sampled-mode simulation; exact execution when `None`. Part of the
    /// campaign identity: sampled cells journal their CI and never share a
    /// cache entry or journal with an exact run of the same grid.
    pub sampling: Option<SamplingConfig>,
}

impl SubmitRequest {
    /// A paper-grid submission with every knob on the daemon default.
    pub fn paper() -> SubmitRequest {
        SubmitRequest {
            grid: Grid::Paper,
            procs: None,
            refs: None,
            seed: None,
            deadline_ms: None,
            hw_prefetch: None,
            protocol: None,
            sampling: None,
        }
    }

    /// The request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::from("{\"cmd\":\"submit\",");
        match &self.grid {
            Grid::Paper => wire::push_str_field(&mut s, "grid", "paper"),
            Grid::Cells(cells) => {
                s.push_str("\"cells\":[");
                for (i, exp) in cells.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&wire::encode_experiment(*exp));
                }
                s.push_str("],");
            }
        }
        if let Some(p) = self.procs {
            s.push_str(&format!("\"procs\":{p},"));
        }
        if let Some(r) = self.refs {
            s.push_str(&format!("\"refs\":{r},"));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!("\"seed\":{seed},"));
        }
        if let Some(ms) = self.deadline_ms {
            s.push_str(&format!("\"deadline_ms\":{ms},"));
        }
        if let Some(hw) = self.hw_prefetch {
            wire::push_str_field(&mut s, "hw_prefetch", &hw.to_string());
        }
        if let Some(proto) = self.protocol {
            wire::push_str_field(&mut s, "protocol", proto.key_name());
        }
        if let Some(smp) = self.sampling {
            s.push_str(&format!(
                "\"sampling\":{{\"mode\":\"{}\",\"window\":{},\"period\":{},\"warmup\":{},\
                 \"max_k\":{},\"seed\":{},\"cold\":{}}},",
                smp.mode.name(),
                smp.window_accesses,
                smp.period,
                smp.warmup,
                smp.max_k,
                smp.seed,
                smp.cold,
            ));
        }
        s.pop();
        s.push('}');
        s
    }
}

/// One decoded reply frame.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Campaign accepted: its resumable token, grid size, and how many
    /// cells the journal already held.
    Opened { campaign: String, cells: u64, restored: u64 },
    /// One completed cell (journal-format summary, lossless).
    Cell(RunSummary),
    /// One cell failed; the campaign continues degraded.
    CellError { experiment: Option<Experiment>, error: String },
    /// Campaign finished streaming.
    Done { campaign: String, cells: u64, completed: u64, failed: u64 },
    /// Admission control shed this request; retry after the hint.
    Saturated { retry_after_ms: u64 },
    /// The daemon is shutting down; resubmit the same request after
    /// restart — the token names the journal that resumes it.
    Draining { campaign: String, completed: u64, remaining: u64 },
    /// The per-request deadline fired; progress so far.
    DeadlineExceeded { limit_ms: u64, completed: u64, remaining: u64 },
    /// Validation or internal failure (`bad_request`, `oversized`,
    /// `journal`, …).
    Error { kind: String, detail: String },
}

/// Decodes one reply line.
pub fn decode_frame(line: &str) -> Result<Frame, String> {
    let v = wire::parse(line.trim())?;
    if let Some(cell) = v.opt_field("cell") {
        return Ok(Frame::Cell(decode_summary_value(cell)?));
    }
    if let Some(err) = v.opt_field("cell_error") {
        let experiment = err.opt_field("experiment").and_then(|e| wire::decode_experiment(e).ok());
        let error = err.field("error")?.str()?.to_owned();
        return Ok(Frame::CellError { experiment, error });
    }
    if v.opt_field("done").is_some() {
        return Ok(Frame::Done {
            campaign: v.field("campaign")?.str()?.to_owned(),
            cells: v.field("cells")?.num()?,
            completed: v.field("completed")?.num()?,
            failed: v.field("failed")?.num()?,
        });
    }
    if let Some(kind) = v.opt_field("error") {
        let kind = kind.str()?.to_owned();
        let num = |name: &str| v.opt_field(name).and_then(|n| n.num().ok()).unwrap_or(0);
        return Ok(match kind.as_str() {
            "saturated" => Frame::Saturated { retry_after_ms: num("retry_after_ms") },
            "draining" => Frame::Draining {
                campaign: v.field("campaign")?.str()?.to_owned(),
                completed: num("completed"),
                remaining: num("remaining"),
            },
            "WallClockExceeded" => Frame::DeadlineExceeded {
                limit_ms: num("limit_ms"),
                completed: num("completed"),
                remaining: num("remaining"),
            },
            _ => Frame::Error {
                kind,
                detail: v
                    .opt_field("detail")
                    .and_then(|d| d.str().ok())
                    .unwrap_or_default()
                    .to_owned(),
            },
        });
    }
    if v.opt_field("ok").is_some() {
        if let Some(campaign) = v.opt_field("campaign") {
            return Ok(Frame::Opened {
                campaign: campaign.str()?.to_owned(),
                cells: v.field("cells")?.num()?,
                restored: v.field("restored")?.num()?,
            });
        }
        // ping/shutdown acknowledgements surface as a generic ok.
        return Ok(Frame::Error { kind: "ok".into(), detail: line.trim().to_owned() });
    }
    Err(format!("unrecognized frame: {line:?}"))
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| io::Error::new(e.kind(), format!("connecting to {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

fn send_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Submits a campaign, invoking `on_frame` for each decoded reply frame as
/// it arrives (the stream is incremental: cells show up as they finish).
/// Undecodable reply lines abort with `InvalidData`.
pub fn submit_streaming(
    addr: &str,
    req: &SubmitRequest,
    mut on_frame: impl FnMut(&Frame),
) -> io::Result<Vec<Frame>> {
    let mut stream = connect(addr)?;
    send_line(&mut stream, &req.encode())?;
    let mut frames = Vec::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let frame = decode_frame(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{addr}: {e}")))?;
        on_frame(&frame);
        let terminal = matches!(
            frame,
            Frame::Done { .. }
                | Frame::Saturated { .. }
                | Frame::Draining { .. }
                | Frame::DeadlineExceeded { .. }
                | Frame::Error { .. }
        );
        frames.push(frame);
        if terminal {
            break;
        }
    }
    Ok(frames)
}

/// [`submit_streaming`] without a callback.
pub fn submit(addr: &str, req: &SubmitRequest) -> io::Result<Vec<Frame>> {
    submit_streaming(addr, req, |_| {})
}

fn one_line_command(addr: &str, cmd: &str) -> io::Result<String> {
    let mut stream = connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    send_line(&mut stream, cmd)?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("{addr}: daemon closed the connection without replying"),
        ));
    }
    Ok(reply.trim_end().to_owned())
}

/// One-line stats snapshot (the daemon's counters as a JSON object).
pub fn stats(addr: &str) -> io::Result<String> {
    one_line_command(addr, "{\"cmd\":\"stats\"}")
}

/// Liveness probe.
pub fn ping(addr: &str) -> io::Result<String> {
    one_line_command(addr, "{\"cmd\":\"ping\"}")
}

/// Asks the daemon to drain and exit (what SIGTERM does).
pub fn shutdown(addr: &str) -> io::Result<String> {
    one_line_command(addr, "{\"cmd\":\"shutdown\"}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie::{Strategy, Workload};

    #[test]
    fn request_encoding_round_trips_through_wire_parse() {
        let req = SubmitRequest {
            grid: Grid::Cells(vec![Experiment::paper(Workload::Mp3d, Strategy::Pref, 8)]),
            procs: Some(2),
            refs: Some(600),
            seed: Some(7),
            deadline_ms: Some(5000),
            hw_prefetch: Some(HwPrefetchConfig::stride(2, 4)),
            protocol: Some(Protocol::Dragon),
            sampling: Some(SamplingConfig::smarts()),
        };
        let v = wire::parse(&req.encode()).unwrap();
        assert_eq!(v.field("cmd").unwrap().str().unwrap(), "submit");
        assert_eq!(v.field("procs").unwrap().num().unwrap(), 2);
        assert_eq!(v.field("hw_prefetch").unwrap().str().unwrap(), "stride:2:4");
        assert_eq!(v.field("protocol").unwrap().str().unwrap(), "dragon");
        let smp = v.field("sampling").unwrap();
        assert_eq!(smp.field("mode").unwrap().str().unwrap(), "smarts");
        assert_eq!(smp.field("period").unwrap().num().unwrap(), 37);
        assert_eq!(smp.field("cold").unwrap().num().unwrap(), 8);
        let cells = v.field("cells").unwrap().arr().unwrap();
        assert_eq!(
            wire::decode_experiment(&cells[0]).unwrap(),
            Experiment::paper(Workload::Mp3d, Strategy::Pref, 8)
        );
        let paper = wire::parse(&SubmitRequest::paper().encode()).unwrap();
        assert_eq!(paper.field("grid").unwrap().str().unwrap(), "paper");
    }

    #[test]
    fn frame_decoding_covers_every_shape() {
        match decode_frame("{\"ok\":true,\"campaign\":\"cdeadbeef\",\"cells\":3,\"restored\":1}")
            .unwrap()
        {
            Frame::Opened { campaign, cells, restored } => {
                assert_eq!((campaign.as_str(), cells, restored), ("cdeadbeef", 3, 1));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            decode_frame("{\"error\":\"saturated\",\"retry_after_ms\":1000}").unwrap(),
            Frame::Saturated { retry_after_ms: 1000 }
        ));
        assert!(matches!(
            decode_frame(
                "{\"error\":\"WallClockExceeded\",\"limit_ms\":5,\"campaign\":\"c0\",\
                 \"completed\":2,\"remaining\":7}"
            )
            .unwrap(),
            Frame::DeadlineExceeded { limit_ms: 5, completed: 2, remaining: 7 }
        ));
        assert!(matches!(
            decode_frame("{\"error\":\"draining\",\"campaign\":\"c1\",\"completed\":0,\
                          \"remaining\":4}")
                .unwrap(),
            Frame::Draining { remaining: 4, .. }
        ));
        assert!(matches!(
            decode_frame("{\"done\":true,\"campaign\":\"c2\",\"cells\":4,\"completed\":4,\
                          \"failed\":0}")
                .unwrap(),
            Frame::Done { completed: 4, failed: 0, .. }
        ));
        assert!(decode_frame("not json").is_err());
        assert!(decode_frame("{\"mystery\":1}").is_err());
    }
}
