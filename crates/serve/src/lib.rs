//! `charlie-serve` — the always-on simulation service.
//!
//! A long-running daemon that accepts sweep/run campaigns over plain TCP
//! (newline-delimited JSON, with a minimal HTTP/1.1 shim for `curl`),
//! admission-controls them against a bounded queue, schedules their cells
//! across a persistent worker pool, and streams each completed
//! [`RunSummary`] back incrementally. Every campaign is backed by a
//! config-keyed CRC-framed checkpoint journal, so a SIGKILL'd daemon
//! resumes exactly-once per cell on restart, and a request-level memo
//! cache coalesces concurrent duplicates down to one simulation.
//!
//! The wire format for results is deliberately the *journal* format
//! ([`charlie::checkpoint::encode_summary`]): the bytes a client decodes
//! are the bytes a resumed daemon would replay, which is what makes a
//! kill-and-restart campaign byte-identical to an uninterrupted one.
//!
//! ## Protocol
//!
//! One request per connection, one JSON object per line:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! {"cmd":"submit","grid":"paper","procs":8,"refs":160000,"seed":12648430}
//! {"cmd":"submit","cells":[{"workload":"Mp3d","strategy":"PREF","transfer":8,
//!                           "layout":"interleaved"}],"deadline_ms":60000}
//! ```
//!
//! Replies are NDJSON frames: an opening
//! `{"ok":true,"campaign":"c…","cells":N,"restored":K}`, then one
//! `{"cell":…}` (or `{"cell_error":…}`) per cell *in request order*, then
//! `{"done":…}`. Degraded outcomes use `{"error":…}` frames:
//! `"saturated"` (shed, with `retry_after_ms`), `"draining"` (daemon is
//! shutting down; the campaign token resumes the rest after restart),
//! `"WallClockExceeded"` (per-request deadline, with progress counters),
//! `"bad_request"` / `"oversized"` (validation).
//!
//! The HTTP shim maps `GET /stats` and `POST /submit` onto the same
//! handlers; a shed campaign answers `429` with a `Retry-After` header.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use charlie::checkpoint::{encode_summary, Journal, JournalOptions};
use charlie::parallel::Pool;
use charlie::prefetch::HwPrefetchConfig;
use charlie::retry::RetryPolicy;
use charlie::wire::{self, Json};
use charlie::{execute_cell, experiments, Experiment, Protocol, RunConfig, RunError, RunSummary};

pub mod client;
pub mod worker;

/// Longest accepted request line / HTTP body: anything larger is garbage
/// or abuse, answered with an `oversized` frame instead of unbounded
/// buffering.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Seconds an idle connection may sit without sending a complete request.
const IDLE_LIMIT: Duration = Duration::from_secs(10);

/// `Retry-After` the daemon advertises when shedding (milliseconds).
pub const RETRY_AFTER_MS: u64 = 1000;

/// Largest per-proc reference count one submit may ask for. Admission
/// control bounds how many campaigns run, not how long each cell runs;
/// without this ceiling a single `refs`-in-the-billions cell would occupy
/// a pool worker indefinitely (deadlines act only at the wait level) and
/// starve every other campaign. The paper's own grid tops out around
/// 160k refs per proc; 10M leaves two orders of magnitude of headroom.
pub const MAX_REFS_PER_PROC: usize = 10_000_000;

/// Largest transfer latency a submitted cell may carry — same rationale
/// as [`MAX_REFS_PER_PROC`]: simulated time per cell must stay bounded.
/// The paper sweeps 8..=100 cycles.
pub const MAX_TRANSFER_CYCLES: u64 = 100_000;

/// The error message queued-but-unstarted cells complete with during a
/// drain; the campaign handler recognizes it and answers a `draining`
/// frame (with the resumable token) instead of a per-cell error.
const DRAINING_MSG: &str = "daemon draining; resubmit campaign to resume";

/// Process-wide SIGTERM latch (the handler can only touch a static).
pub(crate) static SIGTERM_DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
pub(crate) fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_sig: i32) {
        SIGTERM_DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
pub(crate) fn install_sigterm_handler() {}

/// Daemon configuration, defaulted from the `CHARLIE_SERVE_*` environment.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`CHARLIE_SERVE_ADDR`, default `127.0.0.1:7077`;
    /// port 0 picks a free port — the daemon prints the resolved address).
    pub addr: String,
    /// Admission-queue capacity: campaigns admitted concurrently before
    /// the daemon sheds with `saturated` (`CHARLIE_SERVE_QUEUE`, default 8).
    pub queue: usize,
    /// Default per-request wall-clock deadline in milliseconds; 0 means
    /// none (`CHARLIE_SERVE_DEADLINE_MS`). Requests may override.
    pub deadline_ms: u64,
    /// Largest cell grid one request may submit (default 4096).
    pub cell_budget: usize,
    /// Worker threads; 0 means one per core.
    pub jobs: usize,
    /// Directory holding per-campaign checkpoint journals
    /// (default `charlie-serve-state`).
    pub state_dir: PathBuf,
}

impl ServeConfig {
    /// Reads `CHARLIE_SERVE_ADDR` / `CHARLIE_SERVE_QUEUE` /
    /// `CHARLIE_SERVE_DEADLINE_MS` over the built-in defaults.
    pub fn from_env() -> ServeConfig {
        let env_num = |key: &str, default: u64| -> u64 {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        ServeConfig {
            addr: std::env::var("CHARLIE_SERVE_ADDR")
                .unwrap_or_else(|_| "127.0.0.1:7077".to_owned()),
            queue: env_num("CHARLIE_SERVE_QUEUE", 8) as usize,
            deadline_ms: env_num("CHARLIE_SERVE_DEADLINE_MS", 0),
            cell_budget: 4096,
            jobs: 0,
            state_dir: PathBuf::from("charlie-serve-state"),
        }
    }
}

/// A memoized cell is keyed by everything that determines its bytes: the
/// machine/trace config and the experiment. The per-request deadline is
/// deliberately *not* part of the key (and `wall_limit_ms` is forced to 0)
/// so one client's short deadline can never poison the shared cache.
type CellKey = (RunConfig, Experiment);

pub(crate) fn cell_config(cfg: &RunConfig) -> RunConfig {
    RunConfig { wall_limit_ms: 0, ..*cfg }
}

/// One in-flight cell: the first claimant runs it, everyone else parks on
/// the condvar until `slot` fills.
struct CellEntry {
    slot: Mutex<Option<Result<Arc<RunSummary>, RunError>>>,
    cond: Condvar,
}

impl CellEntry {
    fn new() -> CellEntry {
        CellEntry { slot: Mutex::new(None), cond: Condvar::new() }
    }
}

/// What [`MemoCache::claim`] established about a cell.
enum Claim {
    /// Already simulated; here is the shared summary.
    Hit(Arc<RunSummary>),
    /// This claimant must run it (and [`MemoCache::complete`] it); the
    /// entry is also its own wait handle.
    Run(Arc<CellEntry>),
    /// Someone else is running it; wait on the entry.
    Wait(Arc<CellEntry>),
}

/// Completed cells the memo cache retains before evicting the least
/// recently used — bounds an always-on daemon's memory instead of growing
/// one entry per distinct cell forever. Generously above the per-request
/// cell budget, so a full paper sweep resubmitted back-to-back still hits
/// on every cell.
const MEMO_CACHE_CAP: usize = 8192;

struct CacheInner {
    /// Completed cells, stamped with the tick of their last use.
    done: HashMap<CellKey, (u64, Arc<RunSummary>)>,
    inflight: HashMap<CellKey, Arc<CellEntry>>,
    /// Monotonic use counter driving LRU eviction.
    tick: u64,
}

impl CacheInner {
    /// Inserts a completed cell, evicting the least recently used entry
    /// once the cache is over `cap`.
    fn store(&mut self, cap: usize, key: CellKey, summary: Arc<RunSummary>) {
        self.tick += 1;
        self.done.insert(key, (self.tick, summary));
        while self.done.len() > cap {
            let oldest = self
                .done
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
                .expect("cache over cap is non-empty");
            self.done.remove(&oldest);
        }
    }
}

/// The request-level memo/dedup cache: completed cells are shared across
/// campaigns (bounded LRU), concurrent duplicates coalesce onto one
/// simulation, and errors are *never* cached — a panicking cell degrades
/// only the campaigns waiting on it, then becomes runnable again.
struct MemoCache {
    inner: Mutex<CacheInner>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl MemoCache {
    fn new(cap: usize) -> MemoCache {
        MemoCache {
            inner: Mutex::new(CacheInner {
                done: HashMap::new(),
                inflight: HashMap::new(),
                tick: 0,
            }),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn claim(&self, key: CellKey) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((stamp, sum)) = inner.done.get_mut(&key) {
            *stamp = tick;
            let sum = Arc::clone(sum);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Claim::Hit(sum);
        }
        if let Some(entry) = inner.inflight.get(&key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Claim::Wait(Arc::clone(entry));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CellEntry::new());
        inner.inflight.insert(key, Arc::clone(&entry));
        Claim::Run(entry)
    }

    fn complete(&self, key: CellKey, result: Result<Arc<RunSummary>, RunError>) {
        let entry = {
            let mut inner = self.inner.lock().unwrap();
            let entry = inner.inflight.remove(&key);
            if let Ok(sum) = &result {
                inner.store(self.cap, key, Arc::clone(sum));
            }
            entry
        };
        if let Some(entry) = entry {
            *entry.slot.lock().unwrap() = Some(result);
            entry.cond.notify_all();
        }
    }

    /// Seeds a journal-restored cell; a cell someone is already re-running
    /// keeps the in-flight claim (the restore is then just redundant).
    fn insert_done(&self, key: CellKey, summary: Arc<RunSummary>) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.done.contains_key(&key) {
            inner.store(self.cap, key, summary);
        }
    }

    /// Blocks until the entry resolves, or `None` at the deadline. The
    /// simulation itself is *not* cancelled — it finishes into the cache
    /// for every other (and future) campaign.
    fn wait(
        &self,
        entry: &CellEntry,
        deadline: Option<Instant>,
    ) -> Option<Result<Arc<RunSummary>, RunError>> {
        let mut slot = entry.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            match deadline {
                None => slot = entry.cond.wait(slot).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    slot = entry.cond.wait_timeout(slot, d - now).unwrap().0;
                }
            }
        }
    }

    fn entries(&self) -> usize {
        self.inner.lock().unwrap().done.len()
    }
}

/// One campaign's durable state: its journal plus the set of cells already
/// journaled (exactly-once: restored at open, extended on first write).
struct Campaign {
    journal: Journal,
    present: HashSet<Experiment>,
}

impl Campaign {
    /// Appends `summary` unless this campaign already holds that cell.
    fn journal_once(&mut self, summary: &RunSummary) {
        if self.present.insert(summary.experiment) {
            self.journal.append(summary);
        }
    }
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    cells_executed: AtomicU64,
    cells_failed: AtomicU64,
    cells_restored: AtomicU64,
    campaigns_completed: AtomicU64,
    campaigns_drained: AtomicU64,
    campaigns_deadline_exceeded: AtomicU64,
}

struct ServerState {
    cfg: ServeConfig,
    cache: MemoCache,
    pool: Pool,
    registry: Mutex<HashMap<String, Arc<Mutex<Campaign>>>>,
    stats: Stats,
    /// Campaigns currently admitted (bounded by `cfg.queue`).
    active: AtomicUsize,
    /// Live connection-handler threads (drain waits for zero).
    conns: AtomicUsize,
    /// Local drain latch (the `shutdown` command); ORed with the SIGTERM
    /// static so in-process test servers can drain independently.
    drain: AtomicBool,
    started: Instant,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || SIGTERM_DRAIN.load(Ordering::SeqCst)
    }

    /// Bounded-queue admission: increments `active` unless the queue is
    /// full. The returned guard releases the slot on drop (including on
    /// panic or a vanished client).
    fn admit(self: &Arc<Self>) -> Option<AdmissionGuard> {
        let mut current = self.active.load(Ordering::SeqCst);
        loop {
            if current >= self.cfg.queue {
                return None;
            }
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(AdmissionGuard { state: Arc::clone(self) }),
                Err(seen) => current = seen,
            }
        }
    }

}

struct AdmissionGuard {
    state: Arc<ServerState>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The daemon: bind once, then [`Server::run`] until drained.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and builds the shared state (cache, pool,
    /// campaign registry). Fails fast on an unusable address.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| io::Error::new(e.kind(), format!("binding {}: {e}", cfg.addr)))?;
        let jobs = if cfg.jobs == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            cfg.jobs
        };
        let state = Arc::new(ServerState {
            cache: MemoCache::new(MEMO_CACHE_CAP),
            pool: Pool::new(jobs),
            registry: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            active: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            drain: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop. Returns once a drain (SIGTERM or the `shutdown`
    /// command) has been requested *and* every connection has finished —
    /// at which point all accepted cells are journaled or answered.
    pub fn run(&self) -> io::Result<()> {
        install_sigterm_handler();
        self.listener.set_nonblocking(true)?;
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    state.conns.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handle_connection(&state, stream);
                        }));
                        state.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: no new connections; wait for in-flight campaigns to
        // stream their `draining`/`done` frames. Queued cells short-circuit
        // (the pool jobs see the flag), in-flight cells finish and journal.
        while self.state.conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// Requests a drain (what SIGTERM does, callable in-process).
    pub fn request_drain(&self) {
        self.state.drain.store(true, Ordering::SeqCst);
    }
}

/// Reads `\n`-terminated lines (and exact byte ranges) from a socket with
/// a hard size cap and an idle limit, so hostile or wedged clients can
/// neither buffer the daemon into the ground nor pin a drain forever.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

enum LineResult {
    Line(Vec<u8>),
    Oversized,
    Eof,
}

impl LineReader {
    fn new(stream: TcpStream) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        Ok(LineReader { stream, buf: Vec::new(), pos: 0 })
    }

    fn fill(&mut self, idle_since: &mut Instant) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(false),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                *idle_since = Instant::now();
                Ok(true)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if idle_since.elapsed() > IDLE_LIMIT {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "idle connection"));
                }
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    fn next_line(&mut self) -> io::Result<LineResult> {
        let mut idle_since = Instant::now();
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                if nl > MAX_REQUEST_BYTES {
                    // The terminator arrived in the same read burst as the
                    // overflow; the line is still over the cap.
                    return Ok(LineResult::Oversized);
                }
                let mut line = self.buf[self.pos..self.pos + nl].to_vec();
                self.pos += nl + 1;
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineResult::Line(line));
            }
            if self.buf.len() - self.pos > MAX_REQUEST_BYTES {
                return Ok(LineResult::Oversized);
            }
            let before = self.buf.len();
            if !self.fill(&mut idle_since)? && self.buf.len() == before {
                return Ok(if self.buf.len() > self.pos {
                    LineResult::Line(self.buf.split_off(self.pos))
                } else {
                    LineResult::Eof
                });
            }
        }
    }

    /// Reads exactly `n` bytes (HTTP bodies); `n` is pre-checked against
    /// the cap by the caller.
    fn read_exact_n(&mut self, n: usize) -> io::Result<Vec<u8>> {
        let mut idle_since = Instant::now();
        while self.buf.len() - self.pos < n {
            if !self.fill(&mut idle_since)? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(body)
    }
}

/// Frame writer that knows whether it is speaking raw NDJSON or the HTTP
/// shim (status line + headers before the first frame, then NDJSON body).
struct Responder {
    stream: TcpStream,
    http: bool,
    status_sent: bool,
}

impl Responder {
    /// The client's address (`ip:port`) — the salt de-synchronizing
    /// per-client backoff hints. Empty when the socket cannot say (the
    /// hint then degrades to one shared jitter value, never an error).
    fn peer(&self) -> String {
        self.stream.peer_addr().map(|a| a.to_string()).unwrap_or_default()
    }

    fn status(&mut self, code: u16, reason: &str, extra_headers: &str) -> io::Result<()> {
        if self.http && !self.status_sent {
            self.status_sent = true;
            write!(
                self.stream,
                "HTTP/1.1 {code} {reason}\r\nContent-Type: application/x-ndjson\r\n\
                 Connection: close\r\n{extra_headers}\r\n"
            )?;
        }
        Ok(())
    }

    /// One frame: status (200 if none was sent yet), the JSON line, flush —
    /// flushing per frame is what makes the stream incremental.
    fn frame(&mut self, json: &str) -> io::Result<()> {
        self.status(200, "OK", "")?;
        self.stream.write_all(json.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = match LineReader::new(reader_stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut resp = Responder { stream, http: false, status_sent: false };

    let first = match reader.next_line() {
        Ok(LineResult::Line(line)) => line,
        Ok(LineResult::Oversized) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = resp.frame(&format!(
                "{{\"error\":\"oversized\",\"limit_bytes\":{MAX_REQUEST_BYTES}}}"
            ));
            return;
        }
        _ => return,
    };
    let text = String::from_utf8_lossy(&first).into_owned();

    let request = if text.starts_with("GET ") || text.starts_with("POST ") {
        resp.http = true;
        match read_http_request(state, &text, &mut reader, &mut resp) {
            Some(body) => body,
            None => return, // already answered (404 / oversized / bad body)
        }
    } else {
        text
    };

    match wire::parse(request.trim()) {
        Ok(v) => dispatch(state, &v, &mut resp),
        Err(e) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = resp.status(400, "Bad Request", "");
            let mut f = String::from("{\"error\":\"bad_request\",");
            wire::push_str_field(&mut f, "detail", &e);
            f.pop();
            f.push('}');
            let _ = resp.frame(&f);
        }
    }
}

/// The HTTP/1.1 shim: consumes headers, maps `GET /stats` to the stats
/// command and `POST /submit` to the submitted body, 404s everything else.
/// Returns the JSON request text, or `None` after answering directly.
fn read_http_request(
    state: &Arc<ServerState>,
    request_line: &str,
    reader: &mut LineReader,
    resp: &mut Responder,
) -> Option<String> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let mut content_length = 0usize;
    loop {
        match reader.next_line() {
            Ok(LineResult::Line(line)) if line.is_empty() => break,
            Ok(LineResult::Line(line)) => {
                let header = String::from_utf8_lossy(&line).into_owned();
                if let Some((name, value)) = header.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(usize::MAX);
                    }
                }
            }
            _ => return None,
        }
    }

    match (method, path) {
        ("GET", "/stats") => Some("{\"cmd\":\"stats\"}".to_owned()),
        ("POST", "/submit") => {
            if content_length > MAX_REQUEST_BYTES {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let _ = resp.status(413, "Payload Too Large", "");
                let _ = resp.frame(&format!(
                    "{{\"error\":\"oversized\",\"limit_bytes\":{MAX_REQUEST_BYTES}}}"
                ));
                return None;
            }
            match reader.read_exact_n(content_length) {
                Ok(body) => Some(String::from_utf8_lossy(&body).into_owned()),
                Err(_) => None,
            }
        }
        _ => {
            let _ = resp.status(404, "Not Found", "");
            let _ = resp.frame("{\"error\":\"not_found\"}");
            None
        }
    }
}

fn dispatch(state: &Arc<ServerState>, request: &Json, resp: &mut Responder) {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let cmd = match request.field("cmd").and_then(|c| c.str().map(str::to_owned)) {
        Ok(cmd) => cmd,
        Err(e) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = resp.status(400, "Bad Request", "");
            let mut f = String::from("{\"error\":\"bad_request\",");
            wire::push_str_field(&mut f, "detail", &e);
            f.pop();
            f.push('}');
            let _ = resp.frame(&f);
            return;
        }
    };
    match cmd.as_str() {
        "ping" => {
            let _ = resp.frame("{\"ok\":true,\"pong\":true}");
        }
        "stats" => {
            let _ = resp.frame(&render_stats(state));
        }
        "shutdown" => {
            state.drain.store(true, Ordering::SeqCst);
            let _ = resp.frame("{\"ok\":true,\"draining\":true}");
        }
        "submit" => handle_submit(state, request, resp),
        other => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = resp.status(400, "Bad Request", "");
            let mut f = String::from("{\"error\":\"bad_request\",");
            wire::push_str_field(&mut f, "detail", &format!("unknown cmd {other:?}"));
            f.pop();
            f.push('}');
            let _ = resp.frame(&f);
        }
    }
}

fn render_stats(state: &ServerState) -> String {
    let s = &state.stats;
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut json = format!(
        concat!(
            "{{\"uptime_ms\":{},",
            "\"queue\":{{\"capacity\":{},\"active\":{}}},",
            "\"admission\":{{\"requests\":{},\"accepted\":{},\"shed\":{},",
            "\"bad_requests\":{}}},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"coalesced\":{},\"entries\":{}}},",
            "\"cells\":{{\"executed\":{},\"failed\":{},\"restored\":{}}},",
            "\"campaigns\":{{\"completed\":{},\"drained\":{},\"deadline_exceeded\":{}}}}}"
        ),
        state.started.elapsed().as_millis(),
        state.cfg.queue,
        state.active.load(Ordering::SeqCst),
        g(&s.requests),
        g(&s.accepted),
        g(&s.shed),
        g(&s.bad_requests),
        state.cache.hits.load(Ordering::Relaxed),
        state.cache.misses.load(Ordering::Relaxed),
        state.cache.coalesced.load(Ordering::Relaxed),
        state.cache.entries(),
        g(&s.cells_executed),
        g(&s.cells_failed),
        g(&s.cells_restored),
        g(&s.campaigns_completed),
        g(&s.campaigns_drained),
        g(&s.campaigns_deadline_exceeded),
    );
    // Fleet health rides along only once a worker has registered in this
    // state dir, so a workerless daemon's stats stay byte-stable.
    if let Some(workers) = worker::render_workers_section(&state.cfg.state_dir) {
        json.pop();
        json.push_str(",\"workers\":");
        json.push_str(&workers);
        json.push('}');
    }
    json
}

/// One decoded `submit` request.
pub(crate) struct SubmitSpec {
    pub(crate) cells: Vec<Experiment>,
    pub(crate) cfg: RunConfig,
    pub(crate) deadline_ms: u64,
}

pub(crate) fn decode_submit(default_deadline_ms: u64, v: &Json) -> Result<SubmitSpec, String> {
    let mut cfg = RunConfig::default();
    if let Some(n) = v.opt_field("procs") {
        cfg.procs = n.num()? as usize;
        if cfg.procs == 0 || cfg.procs > 64 {
            return Err(format!("procs {} out of range 1..=64", cfg.procs));
        }
    }
    if let Some(n) = v.opt_field("refs") {
        let refs = n.num()?;
        if refs == 0 || refs > MAX_REFS_PER_PROC as u64 {
            return Err(format!("refs {refs} out of range 1..={MAX_REFS_PER_PROC}"));
        }
        cfg.refs_per_proc = refs as usize;
    }
    if let Some(n) = v.opt_field("seed") {
        cfg.seed = n.num()?;
    }
    if let Some(s) = v.opt_field("hw_prefetch") {
        cfg.hw_prefetch = HwPrefetchConfig::parse(s.str()?)?;
    }
    if let Some(s) = v.opt_field("protocol") {
        let spec = s.str()?;
        cfg.protocol = Protocol::parse(spec)
            .ok_or_else(|| format!("unknown protocol {spec:?} ({})", Protocol::CHOICES))?;
    }
    if let Some(smp) = v.opt_field("sampling") {
        cfg.sampling = Some(decode_sampling(smp)?);
    }
    // Deadlines act at the campaign-wait level; the cell itself runs (and
    // is cached) unlimited so the key stays deadline-independent.
    cfg.wall_limit_ms = 0;

    let deadline_ms = match v.opt_field("deadline_ms") {
        Some(n) => n.num()?,
        None => default_deadline_ms,
    };

    let cells: Vec<Experiment> = match (v.opt_field("grid"), v.opt_field("cells")) {
        (Some(g), None) => match g.str()? {
            "paper" => experiments::full_grid(),
            other => return Err(format!("unknown grid {other:?} (expected \"paper\")")),
        },
        (None, Some(list)) => list
            .arr()?
            .iter()
            .map(wire::decode_experiment)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("exactly one of \"grid\" or \"cells\" is required".into()),
    };
    if cells.is_empty() {
        return Err("empty cell grid".into());
    }
    if let Some(exp) = cells.iter().find(|e| e.transfer_cycles > MAX_TRANSFER_CYCLES) {
        return Err(format!(
            "transfer {} exceeds the server ceiling {MAX_TRANSFER_CYCLES}",
            exp.transfer_cycles
        ));
    }
    Ok(SubmitSpec { cells, cfg, deadline_ms })
}

/// Decodes the request's nested `sampling` object: the named mode's
/// defaults with any field overridden, validated like the CLI flags. The
/// resulting config lands in [`RunConfig::sampling`], so sampled cells get
/// their own cache key, journal, and campaign token — they can never
/// coalesce with (or pollute) an exact run of the same grid.
fn decode_sampling(v: &Json) -> Result<charlie::SamplingConfig, String> {
    let mode_name = v.field("mode")?.str()?;
    let mode = charlie::SamplingMode::parse(mode_name)
        .ok_or_else(|| format!("unknown sampling mode {mode_name:?} (smarts or simpoint)"))?;
    let mut smp = match mode {
        charlie::SamplingMode::Smarts => charlie::SamplingConfig::smarts(),
        charlie::SamplingMode::Simpoint => charlie::SamplingConfig::simpoint(),
    };
    if let Some(n) = v.opt_field("window") {
        smp.window_accesses = n.num()?;
    }
    if let Some(n) = v.opt_field("period") {
        smp.period = n.num()?;
    }
    if let Some(n) = v.opt_field("warmup") {
        smp.warmup = n.num()?;
    }
    if let Some(n) = v.opt_field("max_k") {
        smp.max_k = n.num()?;
    }
    if let Some(n) = v.opt_field("seed") {
        smp.seed = n.num()?;
    }
    if let Some(n) = v.opt_field("cold") {
        smp.cold = n.num()?;
    }
    smp.validate()?;
    Ok(smp)
}

/// The campaign's durable identity: config plus grid, hashed into the
/// journal's config key and the resumable token.
pub(crate) fn campaign_key(cfg: &RunConfig, cells: &[Experiment]) -> (String, String) {
    let mut grid = String::new();
    for exp in cells {
        grid.push_str(&wire::encode_experiment(*exp));
    }
    let hw = if cfg.hw_prefetch.is_enabled() {
        format!("/hw={}", cfg.hw_prefetch)
    } else {
        String::new()
    };
    // Like /hw=, appended only for non-default protocols so existing
    // Illinois campaign journals keep their keys (and tokens) unchanged.
    let proto = if cfg.protocol != Protocol::WriteInvalidate {
        format!("/proto={}", cfg.protocol.key_name())
    } else {
        String::new()
    };
    // Sampled campaigns get distinct keys (and thus journals and tokens)
    // from exact ones over the same grid; absent for exact mode so every
    // pre-sampling journal keeps its key.
    let smp = match cfg.sampling {
        Some(s) => format!(
            "/smp={}:{}:{}:{}:{}:{}:{}",
            s.mode.name(),
            s.window_accesses,
            s.period,
            s.warmup,
            s.max_k,
            s.seed,
            s.cold
        ),
        None => String::new(),
    };
    let key = format!(
        "serve/p{}/r{}/s{:#x}{hw}{proto}{smp}/g{:016x}",
        cfg.procs,
        cfg.refs_per_proc,
        cfg.seed,
        RetryPolicy::salt(&grid)
    );
    let token = format!("c{:016x}", RetryPolicy::salt(&key));
    (key, token)
}

/// One request's handle on a registry campaign. Dropping the lease evicts
/// the registry entry once no other request or in-flight pool job still
/// references it, closing the journal's fd — an always-on daemon must not
/// pin one open file per campaign it ever served. The on-disk journal
/// survives eviction; a resubmit reopens and restores it.
struct CampaignLease {
    state: Arc<ServerState>,
    token: String,
    campaign: Arc<Mutex<Campaign>>,
}

impl Drop for CampaignLease {
    fn drop(&mut self) {
        let mut registry = self.state.registry.lock().unwrap();
        if let Some(entry) = registry.get(&self.token) {
            // Exactly two strong refs — the registry's and this lease's —
            // means no other handler or cell job can still append; holding
            // the registry lock keeps a new clone from appearing.
            if Arc::ptr_eq(entry, &self.campaign) && Arc::strong_count(entry) == 2 {
                registry.remove(&self.token);
            }
        }
    }
}

/// Opens (or rejoins) the campaign's journal, seeding the memo cache with
/// every restored cell. Returns the campaign lease and how many cells it
/// already holds.
fn open_campaign(
    state: &Arc<ServerState>,
    token: &str,
    key: &str,
    cell_cfg: &RunConfig,
) -> io::Result<(CampaignLease, usize)> {
    let lease = |campaign: &Arc<Mutex<Campaign>>| CampaignLease {
        state: Arc::clone(state),
        token: token.to_owned(),
        campaign: Arc::clone(campaign),
    };
    let mut registry = state.registry.lock().unwrap();
    // Sweep stragglers: a handler that returned early (deadline, vanished
    // client) cannot evict while its cell jobs still hold the campaign;
    // once those finish, the entry sits at one strong ref until collected
    // here. Re-opening from disk reproduces anything swept too eagerly.
    registry.retain(|_, entry| Arc::strong_count(entry) > 1);
    if let Some(campaign) = registry.get(token) {
        let present = campaign.lock().unwrap().present.len();
        return Ok((lease(campaign), present));
    }
    std::fs::create_dir_all(&state.cfg.state_dir).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("creating state dir {}: {e}", state.cfg.state_dir.display()),
        )
    })?;
    let path = state.cfg.state_dir.join(format!("{token}.ckpt"));
    let opts = JournalOptions { config: Some(key.to_owned()), sync: false };
    let (journal, restored) = Journal::open_with(&path, opts)?;
    let mut present = HashSet::new();
    let restored_count = restored.len();
    for summary in restored {
        present.insert(summary.experiment);
        state.cache.insert_done((*cell_cfg, summary.experiment), Arc::new(summary));
    }
    state.stats.cells_restored.fetch_add(restored_count as u64, Ordering::Relaxed);
    let campaign = Arc::new(Mutex::new(Campaign { journal, present }));
    registry.insert(token.to_owned(), Arc::clone(&campaign));
    Ok((lease(&campaign), restored_count))
}

fn error_frame(kind: &str, detail: &str) -> String {
    let mut f = String::from("{\"error\":\"");
    f.push_str(kind);
    f.push_str("\",");
    wire::push_str_field(&mut f, "detail", detail);
    f.pop();
    f.push('}');
    f
}

fn handle_submit(state: &Arc<ServerState>, request: &Json, resp: &mut Responder) {
    let spec = match decode_submit(state.cfg.deadline_ms, request) {
        Ok(spec) => spec,
        Err(e) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = resp.status(400, "Bad Request", "");
            let _ = resp.frame(&error_frame("bad_request", &e));
            return;
        }
    };
    if spec.cells.len() > state.cfg.cell_budget {
        state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = resp.status(413, "Payload Too Large", "");
        let _ = resp.frame(&format!(
            "{{\"error\":\"oversized\",\"cells\":{},\"budget\":{}}}",
            spec.cells.len(),
            state.cfg.cell_budget
        ));
        return;
    }

    // Admission control: a full queue sheds with a structured retryable
    // reply (and HTTP 429 + Retry-After through the shim) instead of
    // queueing unboundedly.
    let _admission = match state.admit() {
        Some(guard) => guard,
        None => {
            state.stats.shed.fetch_add(1, Ordering::Relaxed);
            // Deterministic per-client jitter (same LCG as the batch retry
            // ladder, salted by peer address): N clients shed in the same
            // burst re-arrive spread across [0.75, 1.25) of the hint
            // instead of stampeding back in lockstep.
            let peer = resp.peer();
            let retry_ms =
                charlie::retry::jittered_ms(RETRY_AFTER_MS, RetryPolicy::salt(&peer));
            let _ = resp.status(
                429,
                "Too Many Requests",
                &format!("Retry-After: {}\r\n", retry_ms.div_ceil(1000)),
            );
            let _ = resp.frame(&format!(
                "{{\"error\":\"saturated\",\"retry_after_ms\":{retry_ms},\
                 \"active\":{},\"queue\":{}}}",
                state.active.load(Ordering::SeqCst),
                state.cfg.queue
            ));
            return;
        }
    };
    state.stats.accepted.fetch_add(1, Ordering::Relaxed);

    let cell_cfg = cell_config(&spec.cfg);
    let (key, token) = campaign_key(&cell_cfg, &spec.cells);
    let (lease, restored) = match open_campaign(state, &token, &key, &cell_cfg) {
        Ok(opened) => opened,
        Err(e) => {
            let _ = resp.status(500, "Internal Server Error", "");
            let _ = resp.frame(&error_frame("journal", &e.to_string()));
            return;
        }
    };
    let campaign = &lease.campaign;

    let total = spec.cells.len();
    if resp
        .frame(&format!(
            "{{\"ok\":true,\"campaign\":\"{token}\",\"cells\":{total},\"restored\":{restored}}}"
        ))
        .is_err()
    {
        return;
    }

    // Claim every cell up front: duplicates coalesce immediately and the
    // pool runs misses in parallel while we stream in request order.
    let claims: Vec<(Experiment, Claim)> =
        spec.cells.iter().map(|&exp| (exp, state.cache.claim((cell_cfg, exp)))).collect();
    for (exp, claim) in &claims {
        if let Claim::Run(_) = claim {
            let state = Arc::clone(state);
            let campaign = Arc::clone(&campaign);
            let exp = *exp;
            state.clone().pool.submit(move |_worker| {
                run_cell_job(&state, &campaign, cell_cfg, exp);
            });
        }
    }

    let deadline = match spec.deadline_ms {
        0 => None,
        ms => Some(Instant::now() + Duration::from_millis(ms)),
    };
    let mut completed = 0usize;
    for (i, (exp, claim)) in claims.into_iter().enumerate() {
        let result = match claim {
            Claim::Hit(sum) => Ok(sum),
            Claim::Run(entry) | Claim::Wait(entry) => {
                match state.cache.wait(&entry, deadline) {
                    Some(result) => result,
                    None => {
                        state
                            .stats
                            .campaigns_deadline_exceeded
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = resp.frame(&format!(
                            "{{\"error\":\"WallClockExceeded\",\"limit_ms\":{},\
                             \"campaign\":\"{token}\",\"completed\":{completed},\
                             \"remaining\":{}}}",
                            spec.deadline_ms,
                            total - i
                        ));
                        return;
                    }
                }
            }
        };
        match result {
            Ok(sum) => {
                // Cache hits journal here too: this campaign's journal must
                // be complete even when another campaign did the work.
                campaign.lock().unwrap().journal_once(&sum);
                completed += 1;
                let mut frame = String::from("{\"cell\":");
                frame.push_str(&encode_summary(&sum));
                frame.push('}');
                if resp.frame(&frame).is_err() {
                    return; // client went away; cells keep landing in cache + journal
                }
            }
            Err(RunError::Trace(msg)) if msg == DRAINING_MSG => {
                state.stats.campaigns_drained.fetch_add(1, Ordering::Relaxed);
                let _ = resp.frame(&format!(
                    "{{\"error\":\"draining\",\"campaign\":\"{token}\",\
                     \"completed\":{completed},\"remaining\":{}}}",
                    total - i
                ));
                return;
            }
            Err(err) => {
                let mut frame = String::from("{\"cell_error\":{\"experiment\":");
                frame.push_str(&wire::encode_experiment(exp));
                frame.push(',');
                wire::push_str_field(&mut frame, "error", &err.to_string());
                frame.pop();
                frame.push_str("}}");
                if resp.frame(&frame).is_err() {
                    return;
                }
            }
        }
    }
    state.stats.campaigns_completed.fetch_add(1, Ordering::Relaxed);
    let _ = resp.frame(&format!(
        "{{\"done\":true,\"campaign\":\"{token}\",\"cells\":{total},\
         \"completed\":{completed},\"failed\":{}}}",
        total - completed
    ));
}

/// One pool job: execute the claimed cell through the shared retry ladder,
/// journal it into the submitting campaign, publish to the cache. During a
/// drain, queued-but-unstarted cells complete with the draining marker
/// instead of running, so the daemon exits promptly and the cells re-run
/// on resume.
fn run_cell_job(
    state: &Arc<ServerState>,
    campaign: &Arc<Mutex<Campaign>>,
    cell_cfg: RunConfig,
    exp: Experiment,
) {
    if state.draining() {
        state
            .cache
            .complete((cell_cfg, exp), Err(RunError::Trace(DRAINING_MSG.to_owned())));
        return;
    }
    let salt = RetryPolicy::salt(&format!("{exp}"));
    let outcome = RetryPolicy::TRANSIENT_IO.run(salt, RunError::is_transient_io, || {
        // Panics inside the simulator surface as RunError::Panic through
        // execute_cell's isolation, so one bad cell degrades only the
        // campaigns waiting on it.
        execute_cell(&cell_cfg, exp)
    });
    match outcome {
        Ok(summary) => {
            state.stats.cells_executed.fetch_add(1, Ordering::Relaxed);
            let summary = Arc::new(summary);
            // Journal before publishing: a crash after the cache sees the
            // cell but before the journal does would re-run it on resume
            // (wasteful but correct); the reverse order could answer a
            // client from a cell the journal never got.
            campaign.lock().unwrap().journal_once(&summary);
            state.cache.complete((cell_cfg, exp), Ok(summary));
        }
        Err(err) => {
            state.stats.cells_failed.fetch_add(1, Ordering::Relaxed);
            state.cache.complete((cell_cfg, exp), Err(err));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie::Strategy;
    use charlie::Workload;

    fn tiny_cfg() -> RunConfig {
        RunConfig { refs_per_proc: 600, procs: 2, ..RunConfig::default() }
    }

    #[test]
    fn campaign_key_is_stable_and_grid_sensitive() {
        let cfg = tiny_cfg();
        let a = vec![Experiment::paper(Workload::Water, Strategy::Pref, 8)];
        let b = vec![Experiment::paper(Workload::Water, Strategy::Pws, 8)];
        let (key1, tok1) = campaign_key(&cfg, &a);
        let (key2, tok2) = campaign_key(&cfg, &a);
        assert_eq!((key1.clone(), tok1.clone()), (key2, tok2), "same request, same token");
        let (_, tok3) = campaign_key(&cfg, &b);
        assert_ne!(tok1, tok3, "different grid, different token");
        assert!(tok1.len() == 17 && tok1.starts_with('c'));
        assert!(key1.starts_with("serve/p2/r600/"));
    }

    /// The done-side of the cache is a bounded LRU: inserting past the cap
    /// evicts the least recently *used* entry, and a claim refreshes
    /// recency.
    #[test]
    fn cache_evicts_least_recently_used_beyond_cap() {
        let cache = MemoCache::new(2);
        let cfg = cell_config(&tiny_cfg());
        let exps = [
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
            Experiment::paper(Workload::Water, Strategy::Pws, 8),
        ];
        let summary = Arc::new(execute_cell(&cfg, exps[0]).unwrap());
        cache.insert_done((cfg, exps[0]), Arc::clone(&summary));
        cache.insert_done((cfg, exps[1]), Arc::clone(&summary));
        // Touch the oldest entry so the *other* one is LRU.
        assert!(matches!(cache.claim((cfg, exps[0])), Claim::Hit(_)));
        cache.insert_done((cfg, exps[2]), Arc::clone(&summary));
        assert_eq!(cache.entries(), 2, "cap bounds the cache");
        assert!(matches!(cache.claim((cfg, exps[0])), Claim::Hit(_)), "recently used survives");
        assert!(matches!(cache.claim((cfg, exps[1])), Claim::Run(_)), "LRU entry was evicted");
    }

    #[test]
    fn cache_coalesces_and_never_caches_errors() {
        let cache = MemoCache::new(MEMO_CACHE_CAP);
        let cfg = cell_config(&tiny_cfg());
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let key = (cfg, exp);

        let entry = match cache.claim(key) {
            Claim::Run(entry) => entry,
            _ => panic!("first claim must be Run"),
        };
        assert!(matches!(cache.claim(key), Claim::Wait(_)), "duplicate coalesces");
        cache.complete(key, Err(RunError::Panic("boom".into())));
        assert!(matches!(
            cache.wait(&entry, None),
            Some(Err(RunError::Panic(_)))
        ));
        // The error was not cached: the cell is claimable (and runnable) again.
        assert!(matches!(cache.claim(key), Claim::Run(_)));
        assert_eq!(cache.coalesced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cache_wait_honors_deadline_without_poisoning() {
        let cache = MemoCache::new(MEMO_CACHE_CAP);
        let cfg = cell_config(&tiny_cfg());
        let exp = Experiment::paper(Workload::Water, Strategy::Pref, 8);
        let key = (cfg, exp);
        let entry = match cache.claim(key) {
            Claim::Run(entry) => entry,
            _ => panic!(),
        };
        let deadline = Some(Instant::now() + Duration::from_millis(20));
        assert!(cache.wait(&entry, deadline).is_none(), "deadline fires");
        // The slow simulation still completes into the cache for everyone.
        let summary = Arc::new(execute_cell(&cfg, exp).unwrap());
        cache.complete(key, Ok(Arc::clone(&summary)));
        match cache.claim(key) {
            Claim::Hit(sum) => assert_eq!(*sum, *summary),
            _ => panic!("late completion is a hit for the next claimant"),
        }
    }

    #[test]
    fn decode_submit_validates() {
        let ok = wire::parse(
            "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"Water\",\"strategy\":\"PREF\",\
             \"transfer\":8,\"layout\":\"interleaved\"}],\"procs\":2,\"refs\":600}",
        )
        .unwrap();
        let spec = decode_submit(1234, &ok).unwrap();
        assert_eq!(spec.cells.len(), 1);
        assert_eq!(spec.cfg.procs, 2);
        assert_eq!(spec.deadline_ms, 1234, "server default applies when unset");
        assert_eq!(spec.cfg.wall_limit_ms, 0, "cell config is deadline-free");
        assert_eq!(spec.cfg.sampling, None, "exact mode unless requested");

        let sampled = wire::parse(
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\
             \"sampling\":{\"mode\":\"smarts\",\"period\":41}}",
        )
        .unwrap();
        let spec = decode_submit(0, &sampled).unwrap();
        let smp = spec.cfg.sampling.expect("sampling decoded");
        assert_eq!(smp.mode, charlie::SamplingMode::Smarts);
        assert_eq!(smp.period, 41, "explicit field overrides the mode default");
        assert_eq!(smp.cold, 8, "unspecified fields take the mode default");

        for bad in [
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\"cells\":[]}",
            "{\"cmd\":\"submit\",\"cells\":[]}",
            "{\"cmd\":\"submit\",\"grid\":\"nope\"}",
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\"procs\":0}",
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\"hw_prefetch\":\"bogus\"}",
            // Unbounded work per cell is rejected up front: a refs count in
            // the billions would pin pool workers past any deadline.
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\"refs\":99999999999}",
            "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"Water\",\"strategy\":\"PREF\",\
             \"transfer\":9999999,\"layout\":\"interleaved\"}]}",
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\"sampling\":{\"mode\":\"census\"}}",
            "{\"cmd\":\"submit\",\"grid\":\"paper\",\
             \"sampling\":{\"mode\":\"smarts\",\"period\":0}}",
        ] {
            let v = wire::parse(bad).unwrap();
            assert!(decode_submit(0, &v).is_err(), "{bad} must be rejected");
        }
    }

    /// Sampled campaigns live under their own journal key (and token):
    /// they can never coalesce with an exact run of the same grid, and
    /// exact-mode keys are unchanged from before sampling existed.
    #[test]
    fn campaign_key_separates_sampled_from_exact() {
        let cells = vec![Experiment::paper(Workload::Water, Strategy::Pref, 8)];
        let exact = tiny_cfg();
        let sampled = RunConfig { sampling: Some(charlie::SamplingConfig::smarts()), ..exact };
        let (key_exact, tok_exact) = campaign_key(&exact, &cells);
        let (key_smp, tok_smp) = campaign_key(&sampled, &cells);
        assert!(!key_exact.contains("/smp="), "exact keys are unchanged");
        assert!(key_smp.contains("/smp=smarts:4096:37:2:0:0:8"), "{key_smp}");
        assert_ne!(tok_exact, tok_smp);
    }

    /// Full in-process round trip: bind on port 0, submit a two-cell
    /// campaign twice, verify identical summaries and that the second pass
    /// is all cache hits; then drain.
    #[test]
    fn end_to_end_submit_and_coalesce() {
        let dir = std::env::temp_dir().join(format!(
            "charlie-serve-e2e-{}-{:x}",
            std::process::id(),
            RetryPolicy::salt("e2e")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue: 4,
            deadline_ms: 0,
            cell_budget: 4096,
            jobs: 2,
            state_dir: dir.clone(),
        };
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = Arc::new(server);
        let runner = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run().unwrap())
        };

        let cells = vec![
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
        ];
        let req = client::SubmitRequest {
            grid: client::Grid::Cells(cells.clone()),
            procs: Some(2),
            refs: Some(600),
            seed: None,
            deadline_ms: None,
            hw_prefetch: None,
            protocol: None,
            sampling: None,
        };
        let first = client::submit(&addr, &req).unwrap();
        let second = client::submit(&addr, &req).unwrap();
        let cells_of = |frames: &[client::Frame]| -> Vec<RunSummary> {
            frames
                .iter()
                .filter_map(|f| match f {
                    client::Frame::Cell(sum) => Some(sum.clone()),
                    _ => None,
                })
                .collect()
        };
        let (a, b) = (cells_of(&first), cells_of(&second));
        assert_eq!(a.len(), 2);
        assert_eq!(a, b, "second submit replays identical summaries");
        assert!(matches!(first[0], client::Frame::Opened { restored: 0, .. }));
        assert!(first.iter().any(|f| matches!(f, client::Frame::Done { .. })));

        let stats = client::stats(&addr).unwrap();
        let v = wire::parse(&stats).unwrap();
        let cache = v.field("cache").unwrap();
        assert_eq!(cache.field("misses").unwrap().num().unwrap(), 2);
        assert!(cache.field("hits").unwrap().num().unwrap() >= 2, "second pass hits");

        // Completed campaigns release their registry entry (and journal
        // fd); the lease drops just after the client sees `done`, so poll.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !server.state.registry.lock().unwrap().is_empty() {
            assert!(
                Instant::now() < deadline,
                "completed campaign must be evicted from the registry"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        client::shutdown(&addr).unwrap();
        runner.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
