//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal timing harness with the API surface the benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! throughput annotation and the `criterion_group!` / `criterion_main!`
//! macros. It reports mean wall-clock per iteration — good enough to spot
//! order-of-magnitude regressions, with none of upstream's statistics.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{parameter}", function.into()) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A group of benchmarks sharing a name and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (upstream's statistical sample
    /// count; here simply the number of timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Ends the group (upstream prints summaries here; we print per-bench).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean_nanos();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!(", {:.1} Melem/s", n as f64 * 1e3 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(", {:.1} MB/s", n as f64 * 1e3 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {:.3} ms over {} iters{rate}",
            self.name,
            mean / 1e6,
            b.iters_done
        );
    }
}

/// Times a closure.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters_done: u64,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher { samples, total_nanos: 0, iters_done: 0 }
    }

    /// Runs `f` once untimed (warm-up), then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters_done += self.samples as u64;
    }

    fn mean_nanos(&self) -> f64 {
        if self.iters_done == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.iters_done as f64
        }
    }
}

/// Declares a group runner function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.throughput(Throughput::Elements(7));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &i| {
            b.iter(|| i + 1)
        });
        group.finish();
    }
}
