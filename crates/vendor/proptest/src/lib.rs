//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! deterministic property-testing core with the API surface the repo's
//! property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `boxed`, implemented for
//!   integer ranges, tuples, [`strategy::Just`] and simple string patterns;
//! * [`collection::vec`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_oneof!`] macros;
//! * [`test_runner::ProptestConfig`] (`with_cases`).
//!
//! Unlike upstream there is **no shrinking** and no persisted regression
//! corpus: every test draws its cases from a fixed per-test seed, so runs
//! are bit-reproducible — failures print their case index instead.

pub mod test_runner {
    //! Deterministic case generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test deterministic RNG.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the stream from the test's name (FNV-1a), so each test gets
        /// a distinct but fixed case sequence.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw below `span` (`span` of 0 means the full domain).
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                self.next_u64()
            } else {
                ((self.next_u64() as u128 * span as u128) >> 64) as u64
            }
        }
    }

    /// Runner configuration (`cases` is all this stand-in honours).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A strategy mapped through a function (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies of a common value type (the
    /// expansion of [`prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    start + (rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String patterns as strategies. This stand-in understands the two
    /// shapes the tests use: `\PC*` (any printable string) and a single
    /// character class with repetition, `[…]{min,max}`. Anything else
    /// falls back to short alphanumeric strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            pattern_string(self, rng)
        }
    }

    fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == "\\PC*" {
            // Arbitrary printable text, occasionally spiced with non-ASCII.
            let len = rng.below(48) as usize;
            return (0..len)
                .map(|_| match rng.below(20) {
                    0 => 'λ',
                    1 => '€',
                    2 => '\t',
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                })
                .collect();
        }
        if let Some((class, min, max)) = parse_class_repeat(pattern) {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            return (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect();
        }
        let len = rng.below(20) as usize;
        const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        (0..len).map(|_| ALNUM[rng.below(ALNUM.len() as u64) as usize] as char).collect()
    }

    /// Parses `[class]{min,max}` into (alphabet, min, max).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class_src: Vec<char> = rest[..close].chars().collect();
        let mut class = Vec::new();
        let mut i = 0;
        while i < class_src.len() {
            if i + 2 < class_src.len() && class_src[i + 1] == '-' {
                for c in class_src[i]..=class_src[i + 2] {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(class_src[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = reps.split_once(',')?;
        Some((class, min.trim().parse().ok()?, max.trim().parse().ok()?))
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
pub struct BoolStrategy;

impl strategy::Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, …)` runs
/// its body over `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let result = {
                        $(let $pat = $crate::strategy::Strategy::generate(
                            &$strategy, &mut rng);)+
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            move || $body))
                    };
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest stand-in: {} failed at case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
