//! Offline stand-in for the `fxhash` / `rustc-hash` crates.
//!
//! The build environment has no registry access, so this workspace vendors
//! the well-known Fx multiply-rotate hash (originating in Firefox, used by
//! rustc): each 8-byte word of input is rotated into the state and
//! multiplied by a fixed odd constant. It is *not* collision-resistant or
//! DoS-safe — it exists purely because `std`'s default SipHash costs tens of
//! cycles per lookup, which dominates simulator inner loops keyed by small
//! integers ([`charlie_trace::LineAddr`] values, transaction ids).
//!
//! API surface: [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`] /
//! [`FxHashSet`] aliases the workspace uses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, as in rustc's fork).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using Fx hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using Fx hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_ne!(hash_of(&12345u64), hash_of(&12346u64));
    }

    #[test]
    fn byte_stream_equals_word_writes_for_exact_words() {
        let mut a = FxHasher::default();
        a.write(&0xDEAD_BEEF_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn partial_tail_bytes_hash() {
        let mut h = FxHasher::default();
        h.write(b"abc");
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(s.contains(&42));
        assert!(!s.insert(42));
    }

    #[test]
    fn small_integer_keys_spread() {
        // Sanity: sequential keys do not all collide to the same bucket
        // pattern (the multiply spreads low bits into high bits).
        let hashes: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }
}
