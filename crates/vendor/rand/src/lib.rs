//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *tiny* slice of the `rand` API the workload generators use: a seeded
//! [`rngs::StdRng`], the [`SeedableRng::seed_from_u64`] constructor and
//! [`RngExt::random_range`] over half-open / inclusive integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid and fully deterministic, which is all the synthetic workloads need
//! (their published rates are statistical properties, not functions of a
//! particular engine's bit stream). It intentionally does **not** match the
//! upstream `StdRng` (ChaCha12) stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges a value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform word onto `0..span` (multiply-shift; bias is far below
/// anything the statistical workloads can observe).
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, mirroring `rand`'s `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform draw from an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic PRNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(0..=5);
            assert!(w <= 5);
            let u: usize = rng.random_range(9..=9);
            assert_eq!(u, 9);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(5..5);
    }
}
