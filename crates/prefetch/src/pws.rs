//! The PWS write-shared temporal-locality filter (paper §4.1).

use charlie_cache::{CacheGeometry, FilterCache};
use charlie_trace::{ProcTrace, SharingMap, TraceEvent};

/// Computes the extra prefetch marks PWS adds on top of the oracle's.
///
/// Each processor's references to *write-shared* lines are run through a
/// 16-line fully-associative filter; the filter's misses select the accesses
/// to prefetch redundantly. The premise (quoting the paper): "the longer a
/// shared cache line has resided in the cache without being accessed, the
/// more likely it is to have been invalidated". These prefetches are
/// *redundant in the uniprocessor sense* — the data would still be cached
/// were it not for invalidations — which is exactly why the oracle cannot
/// mark them.
///
/// Returns one `bool` per event of the stream (`true` = add a prefetch).
pub fn pws_extra_marks(
    stream: &ProcTrace,
    geometry: CacheGeometry,
    sharing: &SharingMap,
) -> Vec<bool> {
    debug_assert_eq!(
        sharing.block_bytes(),
        geometry.block_bytes(),
        "sharing map and cache geometry must agree on block size"
    );
    let mut filter = FilterCache::pws_default();
    stream
        .events()
        .iter()
        .map(|ev| match ev {
            TraceEvent::Access(a) if sharing.is_write_shared(a.addr.line(geometry.block_bytes())) => {
                !filter.access(a.addr)
            }
            _ => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::{Addr, TraceBuilder};

    #[test]
    fn only_write_shared_lines_considered() {
        let mut b = TraceBuilder::new(2);
        // 0x100: write-shared; 0x2000: private to P0.
        b.proc(0).read(Addr::new(0x100)).read(Addr::new(0x2000));
        b.proc(1).write(Addr::new(0x100));
        let t = b.build();
        let geometry = CacheGeometry::paper_default();
        let sharing = SharingMap::analyze(&t, 32);
        let marks = pws_extra_marks(t.proc(0), geometry, &sharing);
        assert_eq!(marks, vec![true, false], "only the write-shared cold ref marked");
    }

    #[test]
    fn filter_eviction_re_marks_distant_reuse() {
        let mut b = TraceBuilder::new(2);
        {
            let mut p0 = b.proc(0);
            p0.read(Addr::new(0x100));
            // 20 other write-shared lines flush the 16-line filter.
            for i in 1..=20u64 {
                p0.read(Addr::new(0x100 + i * 32));
            }
            p0.read(Addr::new(0x100)); // distant reuse → marked again
        }
        {
            let mut p1 = b.proc(1);
            for i in 0..=20u64 {
                p1.write(Addr::new(0x100 + i * 32));
            }
        }
        let t = b.build();
        let sharing = SharingMap::analyze(&t, 32);
        let marks = pws_extra_marks(t.proc(0), CacheGeometry::paper_default(), &sharing);
        assert!(marks[0], "cold filter miss");
        assert!(*marks.last().unwrap(), "reuse after filter eviction re-marked");
    }

    #[test]
    fn near_reuse_not_marked() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).read(Addr::new(0x100)).work(5).read(Addr::new(0x104));
        b.proc(1).write(Addr::new(0x100));
        let t = b.build();
        let sharing = SharingMap::analyze(&t, 32);
        let marks = pws_extra_marks(t.proc(0), CacheGeometry::paper_default(), &sharing);
        assert_eq!(marks, vec![true, false, false], "good temporal locality → no extra prefetch");
    }
}
