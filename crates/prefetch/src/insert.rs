//! Placement of prefetch instructions into an event stream.

use charlie_trace::{ProcTrace, TraceEvent};

/// Per-event prefetch decision produced by the oracle (and augmented by the
/// PWS filter and the EXCL policy).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PrefetchMark {
    /// Insert a prefetch covering this access.
    pub prefetch: bool,
    /// The access is a write (candidate for exclusive prefetching).
    pub is_write: bool,
    /// Prefetch in exclusive mode.
    pub exclusive: bool,
}

impl PrefetchMark {
    /// A mark for a non-access event (never prefetched).
    pub fn inert() -> Self {
        PrefetchMark { prefetch: false, is_write: false, exclusive: false }
    }
}

/// Inserts a prefetch `distance` estimated CPU cycles ahead of every marked
/// access.
///
/// The distance is measured with the paper's off-line cost model
/// ([`TraceEvent::estimated_cycles`]: 1 cycle/instruction, accesses assumed
/// to hit). Placement rules:
///
/// * the prefetch lands at the latest point that still leaves at least
///   `distance` cycles before the access (the paper argues for receiving
///   prefetched data "exactly on time");
/// * a prefetch is never hoisted across a lock or barrier operation (a
///   compiler would not move loads across synchronization);
/// * if the stream start or a synchronization boundary is closer than
///   `distance`, the prefetch is placed there.
///
/// # Panics
///
/// Panics if `marks.len() != stream.len()`.
pub fn insert_prefetches(stream: &ProcTrace, marks: &[PrefetchMark], distance: u64) -> ProcTrace {
    assert_eq!(marks.len(), stream.len(), "one mark per event required");
    let events = stream.events();
    let n = events.len();

    // prefix[i] = estimated cycles before event i.
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    prefix.push(0);
    for ev in events {
        acc += ev.estimated_cycles();
        prefix.push(acc);
    }

    // insertions[k] = (event index to insert before, prefetch event); built
    // in nondecreasing index order because prefix sums are nondecreasing.
    let mut insertions: Vec<(usize, TraceEvent)> = Vec::new();
    let mut boundary = 0usize; // first legal insertion index (after last sync)
    for (i, ev) in events.iter().enumerate() {
        if let (TraceEvent::Access(a), mark) = (ev, marks[i]) {
            if mark.prefetch {
                let j = if prefix[i] <= distance {
                    0
                } else {
                    let target = prefix[i] - distance;
                    // Largest j ≤ i with prefix[j] <= target.
                    prefix[..=i].partition_point(|&c| c <= target) - 1
                };
                let j = j.max(boundary);
                insertions
                    .push((j, TraceEvent::Prefetch { addr: a.addr, exclusive: mark.exclusive }));
            }
        }
        if ev.is_sync() {
            boundary = i + 1;
        }
    }

    // Single merge pass.
    let mut out = Vec::with_capacity(n + insertions.len());
    let mut ins = insertions.into_iter().peekable();
    for (i, ev) in events.iter().enumerate() {
        while ins.peek().is_some_and(|&(j, _)| j == i) {
            out.push(ins.next().expect("peeked").1);
        }
        out.push(*ev);
    }
    // Marks always point at existing accesses, so j <= i < n and nothing
    // remains; defend anyway.
    out.extend(ins.map(|(_, e)| e));
    ProcTrace::from_events(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::{Access, Addr};

    fn read(a: u64) -> TraceEvent {
        TraceEvent::Access(Access::read(Addr::new(a)))
    }

    fn mark() -> PrefetchMark {
        PrefetchMark { prefetch: true, is_write: false, exclusive: false }
    }

    fn run(events: Vec<TraceEvent>, marked: &[usize], distance: u64) -> Vec<TraceEvent> {
        let stream = ProcTrace::from_events(events);
        let mut marks = vec![PrefetchMark::inert(); stream.len()];
        for &i in marked {
            marks[i] = mark();
        }
        insert_prefetches(&stream, &marks, distance).events().to_vec()
    }

    #[test]
    fn exact_distance_placement() {
        // Work(150) then access: distance 100 → insert inside... events are
        // atomic, so the prefetch goes before the event whose prefix is the
        // last one ≤ (150 - 100) = 50; prefix of Work(150) is 0 ≤ 50, prefix
        // of the access is 150 > 50 → before the access? No: j is the largest
        // index with prefix[j] <= 50, which is 0 (prefix[1] = 150). So the
        // prefetch lands before the Work event, giving 150 ≥ 100 cycles.
        let out = run(vec![TraceEvent::Work(150), read(0x100)], &[1], 100);
        assert!(matches!(out[0], TraceEvent::Prefetch { .. }));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fine_grained_work_gets_precise_placement() {
        // Ten Work(20) events then the access; distance 100 → insert before
        // the event at prefix 100, i.e. five Work events (100 cycles) remain.
        let mut events: Vec<TraceEvent> = (0..10).map(|_| TraceEvent::Work(20)).collect();
        events.push(read(0x100));
        let out = run(events, &[10], 100);
        let pf_pos = out.iter().position(|e| matches!(e, TraceEvent::Prefetch { .. })).unwrap();
        assert_eq!(pf_pos, 5, "exactly 100 estimated cycles remain after the prefetch");
    }

    #[test]
    fn short_stream_hoists_to_start() {
        let out = run(vec![TraceEvent::Work(10), read(0x100)], &[1], 100);
        assert!(matches!(out[0], TraceEvent::Prefetch { .. }));
    }

    #[test]
    fn never_hoists_across_sync() {
        let events = vec![
            TraceEvent::Work(500),
            TraceEvent::Barrier(charlie_trace::BarrierId(0)),
            TraceEvent::Work(10),
            read(0x100),
        ];
        let out = run(events, &[3], 100);
        let pf_pos = out.iter().position(|e| matches!(e, TraceEvent::Prefetch { .. })).unwrap();
        let barrier_pos = out.iter().position(|e| matches!(e, TraceEvent::Barrier(_))).unwrap();
        assert!(pf_pos > barrier_pos, "prefetch must stay after the barrier");
    }

    #[test]
    fn unmarked_stream_unchanged() {
        let events = vec![TraceEvent::Work(5), read(0x100)];
        let out = run(events.clone(), &[], 100);
        assert_eq!(out, events);
    }

    #[test]
    fn demand_order_preserved_and_counts_add_up() {
        let events = vec![
            TraceEvent::Work(300),
            read(0x100),
            TraceEvent::Work(300),
            read(0x200),
            TraceEvent::Work(300),
            read(0x300),
        ];
        let out = run(events, &[1, 3, 5], 100);
        let addrs: Vec<u64> = out
            .iter()
            .filter_map(|e| e.as_access().map(|a| a.addr.raw()))
            .collect();
        assert_eq!(addrs, vec![0x100, 0x200, 0x300]);
        let pf = out.iter().filter(|e| matches!(e, TraceEvent::Prefetch { .. })).count();
        assert_eq!(pf, 3);
    }

    #[test]
    fn exclusive_flag_propagates() {
        let stream = ProcTrace::from_events(vec![
            TraceEvent::Work(10),
            TraceEvent::Access(Access::write(Addr::new(0x40))),
        ]);
        let marks = vec![
            PrefetchMark::inert(),
            PrefetchMark { prefetch: true, is_write: true, exclusive: true },
        ];
        let out = insert_prefetches(&stream, &marks, 100);
        assert!(matches!(
            out.events()[0],
            TraceEvent::Prefetch { exclusive: true, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "one mark per event")]
    fn mark_length_mismatch_panics() {
        let stream = ProcTrace::from_events(vec![read(0)]);
        let _ = insert_prefetches(&stream, &[], 100);
    }
}
