//! Off-line, compiler-emulating prefetch insertion — the paper's "ideal"
//! prefetcher (§3.1) and its strategy variants (§4.1).
//!
//! The pipeline mirrors the paper's methodology exactly:
//!
//! 1. each processor's demand-access stream is run through a *filter cache*
//!    of the same geometry as the real cache, marking the accesses that miss
//!    for uniprocessor reasons (leading references, capacity, conflicts) —
//!    the "oracle" that never prefetches data that is not used;
//! 2. a [`TraceEvent::Prefetch`] is inserted into the instruction stream a
//!    *prefetch distance* of estimated CPU cycles ahead of each marked
//!    access (never hoisted across a lock or barrier);
//! 3. strategy variants tweak one knob each:
//!    [`Strategy::Excl`] fetches predicted-write misses in exclusive mode,
//!    [`Strategy::Lpd`] stretches the distance from 100 to 400 cycles, and
//!    [`Strategy::Pws`] adds redundant prefetches for write-shared lines
//!    chosen by a 16-line fully-associative temporal-locality filter.
//!
//! # Example
//!
//! ```
//! use charlie_prefetch::{apply, Strategy};
//! use charlie_cache::CacheGeometry;
//! use charlie_trace::{Addr, TraceBuilder};
//!
//! let mut b = TraceBuilder::new(1);
//! b.proc(0).work(200).read(Addr::new(0x100));
//! let trace = b.build();
//! let with_pf = apply(Strategy::Pref, &trace, CacheGeometry::paper_default());
//! assert_eq!(with_pf.total_prefetches(), 1); // the cold miss gets covered
//! ```
//!
//! [`TraceEvent::Prefetch`]: charlie_trace::TraceEvent::Prefetch

pub mod hw;
mod insert;
mod oracle;
mod pws;
pub mod rmw;
mod strategy;

pub use hw::{new_prefetcher, HwPrefetchConfig, HwPrefetcherKind, Prefetcher};
pub use insert::{insert_prefetches, PrefetchMark};
pub use oracle::oracle_miss_marks;
pub use pws::pws_extra_marks;
pub use strategy::Strategy;

use charlie_cache::CacheGeometry;
use charlie_trace::{SharingMap, Trace};

/// Applies `strategy` to a demand trace, returning a new trace with prefetch
/// events inserted. [`Strategy::NoPrefetch`] returns a plain clone.
///
/// The input trace must not already contain prefetch events (they would
/// confuse the distance estimation); the paper's pipeline always starts from
/// the raw trace.
///
/// # Panics
///
/// Panics if `trace` already contains prefetch events.
pub fn apply(strategy: Strategy, trace: &Trace, geometry: CacheGeometry) -> Trace {
    apply_with_distance(strategy, trace, geometry, strategy.prefetch_distance())
}

/// Like [`apply`], with an explicit prefetch distance (in estimated CPU
/// cycles) overriding the strategy's default. The paper's §4.3 studies this
/// knob: too short loses to prefetch-in-progress misses, too long to
/// conflicts.
///
/// # Panics
///
/// Panics if `trace` already contains prefetch events.
pub fn apply_with_distance(
    strategy: Strategy,
    trace: &Trace,
    geometry: CacheGeometry,
    distance: u64,
) -> Trace {
    assert_eq!(trace.total_prefetches(), 0, "input trace already contains prefetches");
    if strategy == Strategy::NoPrefetch {
        return trace.clone();
    }
    let exclusive_writes = strategy.exclusive_writes();

    let sharing = if strategy.prefetches_write_shared() {
        Some(SharingMap::analyze(trace, geometry.block_bytes()))
    } else {
        None
    };

    let mut procs = Vec::with_capacity(trace.num_procs());
    for (_, stream) in trace.iter() {
        let mut marks = oracle_miss_marks(stream, geometry);
        if let Some(sharing) = &sharing {
            let extra = pws_extra_marks(stream, geometry, sharing);
            for (m, e) in marks.iter_mut().zip(extra) {
                m.prefetch |= e;
            }
        }
        if exclusive_writes {
            for m in &mut marks {
                m.exclusive = m.is_write;
            }
        }
        if strategy.exclusive_rmw() {
            rmw::mark_rmw_exclusive(stream, &mut marks, geometry);
        }
        procs.push(insert_prefetches(stream, &marks, distance));
    }
    Trace::from_procs(procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::{Addr, TraceBuilder, TraceEvent};

    fn geom() -> CacheGeometry {
        CacheGeometry::paper_default()
    }

    #[test]
    fn no_prefetch_is_identity() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100)).work(5);
        let t = b.build();
        let out = apply(Strategy::NoPrefetch, &t, geom());
        assert_eq!(out, t);
    }

    #[test]
    fn pref_covers_cold_misses_only() {
        let mut b = TraceBuilder::new(1);
        b.proc(0)
            .work(500)
            .read(Addr::new(0x100)) // cold miss → prefetched
            .read(Addr::new(0x104)) // same-line hit → not prefetched
            .read(Addr::new(0x100)); // hit → not prefetched
        let out = apply(Strategy::Pref, &b.build(), geom());
        assert_eq!(out.total_prefetches(), 1);
        assert_eq!(out.total_accesses(), 3, "demand accesses preserved");
    }

    #[test]
    fn excl_marks_write_misses_exclusive() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).work(500).write(Addr::new(0x100)).read(Addr::new(0x200));
        let out = apply(Strategy::Excl, &b.build(), geom());
        let prefetches: Vec<_> = out
            .proc(0)
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Prefetch { addr, exclusive } => Some((*addr, *exclusive)),
                _ => None,
            })
            .collect();
        assert_eq!(prefetches.len(), 2);
        assert!(prefetches.iter().any(|&(a, ex)| a == Addr::new(0x100) && ex));
        assert!(prefetches.iter().any(|&(a, ex)| a == Addr::new(0x200) && !ex));
    }

    #[test]
    fn pref_uses_shared_mode_even_for_writes() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).work(500).write(Addr::new(0x100));
        let out = apply(Strategy::Pref, &b.build(), geom());
        let ex: Vec<_> = out
            .proc(0)
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Prefetch { exclusive, .. } => Some(*exclusive),
                _ => None,
            })
            .collect();
        assert_eq!(ex, vec![false]);
    }

    #[test]
    fn pws_adds_redundant_write_shared_prefetches() {
        // Line 0x100 is write-shared (P0 writes, P1 reads). P1 touches it,
        // then floods far past the 16-line PWS filter, then touches it again:
        // the second touch is a uniprocessor *hit* (32 KB cache) but a PWS
        // filter miss → PWS adds a prefetch that PREF would not.
        let mut b = TraceBuilder::new(2);
        {
            let mut p0 = b.proc(0);
            p0.work(10).write(Addr::new(0x100));
            for i in 0..40u64 {
                p0.write(Addr::new(0x1000 + i * 32)); // make the flood lines write-shared too
            }
        }
        {
            let mut p1 = b.proc(1);
            p1.work(10).read(Addr::new(0x100));
            for i in 0..40u64 {
                p1.read(Addr::new(0x1000 + i * 32));
            }
            p1.work(200).read(Addr::new(0x100));
        }
        let t = b.build();
        let pref = apply(Strategy::Pref, &t, geom());
        let pws = apply(Strategy::Pws, &t, geom());
        assert!(
            pws.proc(1).num_prefetches() > pref.proc(1).num_prefetches(),
            "PWS must add prefetches beyond PREF ({} vs {})",
            pws.proc(1).num_prefetches(),
            pref.proc(1).num_prefetches()
        );
    }

    #[test]
    fn lpd_hoists_further_than_pref() {
        // A miss 250 estimated cycles into the stream: PREF (distance 100)
        // inserts mid-stream, LPD (distance 400) hoists to the start.
        let mut b = TraceBuilder::new(1);
        b.proc(0).work(125).work(125).read(Addr::new(0x100));
        let t = b.build();
        let pref = apply(Strategy::Pref, &t, geom());
        let lpd = apply(Strategy::Lpd, &t, geom());
        let pos = |tr: &Trace| {
            tr.proc(0)
                .events()
                .iter()
                .position(|e| matches!(e, TraceEvent::Prefetch { .. }))
                .expect("prefetch present")
        };
        assert!(pos(&lpd) < pos(&pref), "LPD inserts earlier");
        assert_eq!(pos(&lpd), 0);
    }

    #[test]
    #[should_panic(expected = "already contains prefetches")]
    fn rejects_double_application() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).work(500).read(Addr::new(0x100));
        let once = apply(Strategy::Pref, &b.build(), geom());
        let _ = apply(Strategy::Pref, &once, geom());
    }

    #[test]
    fn multi_proc_streams_processed_independently() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).work(500).read(Addr::new(0x100));
        b.proc(1).work(500).read(Addr::new(0x8000)).read(Addr::new(0x8100));
        let out = apply(Strategy::Pref, &b.build(), geom());
        assert_eq!(out.proc(0).num_prefetches(), 1);
        assert_eq!(out.proc(1).num_prefetches(), 2);
    }
}
