//! The five prefetching strategies of the paper's §4.1.

use std::fmt;

/// A prefetching discipline applied to the workload off-line, before
/// simulation. Each variant differs from [`Strategy::Pref`] in exactly one
/// characteristic, as in the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// NP — no prefetching; the baseline every execution time is relative to.
    NoPrefetch,
    /// PREF — oracle-predicted uniprocessor misses prefetched in shared mode
    /// at a 100-cycle distance.
    Pref,
    /// EXCL — like PREF, but predicted *write* misses are prefetched in
    /// exclusive mode (read-for-ownership), invalidating remote copies.
    Excl,
    /// LPD — like PREF with a 400-cycle prefetch distance, ensuring the data
    /// arrives even under contention (at the cost of more conflicts).
    Lpd,
    /// PWS — like PREF, plus redundant prefetches of write-shared lines
    /// showing poor temporal locality (16-line associative filter), to cover
    /// invalidation misses.
    Pws,
    /// EXCL-RMW — an extension the paper suggests in §4.3 but does not
    /// evaluate: like EXCL, and additionally a *read* miss that a write to
    /// the same line quickly follows is prefetched exclusive, saving the
    /// upgrade transaction ("the one instance where exclusive prefetching
    /// would actually require fewer bus operations than no prefetching").
    ExclRmw,
}

impl Strategy {
    /// The paper's five strategies, in its reporting order.
    pub const ALL: [Strategy; 5] =
        [Strategy::NoPrefetch, Strategy::Pref, Strategy::Excl, Strategy::Lpd, Strategy::Pws];

    /// The paper's strategies that actually insert prefetches.
    pub const PREFETCHING: [Strategy; 4] =
        [Strategy::Pref, Strategy::Excl, Strategy::Lpd, Strategy::Pws];

    /// Everything, including the post-paper extension.
    pub const EXTENDED: [Strategy; 6] = [
        Strategy::NoPrefetch,
        Strategy::Pref,
        Strategy::Excl,
        Strategy::Lpd,
        Strategy::Pws,
        Strategy::ExclRmw,
    ];

    /// The paper's label for the strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::NoPrefetch => "NP",
            Strategy::Pref => "PREF",
            Strategy::Excl => "EXCL",
            Strategy::Lpd => "LPD",
            Strategy::Pws => "PWS",
            Strategy::ExclRmw => "EXCL-RMW",
        }
    }

    /// Prefetch distance in estimated CPU cycles (100; 400 for LPD).
    pub fn prefetch_distance(self) -> u64 {
        match self {
            Strategy::Lpd => 400,
            _ => 100,
        }
    }

    /// Whether predicted-write misses are fetched in exclusive mode.
    pub fn exclusive_writes(self) -> bool {
        matches!(self, Strategy::Excl | Strategy::ExclRmw)
    }

    /// Whether read-modify-write idioms are detected and fetched exclusive
    /// (see [`crate::rmw`]).
    pub fn exclusive_rmw(self) -> bool {
        self == Strategy::ExclRmw
    }

    /// Whether the write-shared temporal-locality filter adds redundant
    /// prefetches (PWS).
    pub fn prefetches_write_shared(self) -> bool {
        self == Strategy::Pws
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["NP", "PREF", "EXCL", "LPD", "PWS"]);
    }

    #[test]
    fn distances() {
        assert_eq!(Strategy::Pref.prefetch_distance(), 100);
        assert_eq!(Strategy::Excl.prefetch_distance(), 100);
        assert_eq!(Strategy::Pws.prefetch_distance(), 100);
        assert_eq!(Strategy::Lpd.prefetch_distance(), 400);
    }

    #[test]
    fn knobs_are_one_per_variant() {
        assert!(Strategy::Excl.exclusive_writes());
        assert!(!Strategy::Pref.exclusive_writes());
        assert!(Strategy::Pws.prefetches_write_shared());
        assert!(!Strategy::Lpd.prefetches_write_shared());
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Strategy::Pws.to_string(), "PWS");
    }

    /// Exhibit ordering contract: `ALL` is `EXTENDED` minus the extension,
    /// `PREFETCHING` is `ALL` minus the baseline, and every name round-trips
    /// through the `EXTENDED` lookup the CLI and checkpoint decoder use.
    /// Adding a strategy family must extend these arrays at the *end* — a
    /// reorder would silently permute every rendered exhibit.
    #[test]
    fn strategy_constants_agree_and_names_round_trip() {
        assert_eq!(Strategy::EXTENDED[..Strategy::ALL.len()], Strategy::ALL);
        assert_eq!(Strategy::ALL[1..], Strategy::PREFETCHING);
        assert_eq!(Strategy::ALL[0], Strategy::NoPrefetch);
        assert_eq!(
            *Strategy::EXTENDED.last().unwrap(),
            Strategy::ExclRmw,
            "the extension stays last"
        );
        for s in Strategy::EXTENDED {
            let found = Strategy::EXTENDED
                .into_iter()
                .find(|c| c.name() == s.name())
                .expect("every name resolves");
            assert_eq!(found, s, "name {:?} resolves to its own variant", s.name());
        }
        let mut names: Vec<_> = Strategy::EXTENDED.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Strategy::EXTENDED.len(), "names are distinct");
    }
}
