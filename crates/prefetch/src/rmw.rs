//! Read-modify-write detection for exclusive prefetching.
//!
//! The paper's EXCL strategy barely beats PREF because "most of the leading
//! references to shared lines are not writes"; §4.3 then suggests the fix:
//! "a compiler might recognize when a read is followed immediately by a
//! write and make more effective use of the exclusive prefetch feature" —
//! fetching such lines exclusive up front saves the upgrade transaction the
//! write would otherwise need. [`Strategy::ExclRmw`] implements that
//! suggestion; this module provides the detection pass.
//!
//! [`Strategy::ExclRmw`]: crate::Strategy::ExclRmw

use crate::insert::PrefetchMark;
use charlie_cache::CacheGeometry;
use charlie_trace::ProcTrace;

/// How soon (in estimated CPU cycles) a write must follow the read for the
/// pair to count as a read-modify-write idiom.
pub const RMW_WINDOW_CYCLES: u64 = 50;

/// Upgrades prefetch marks on *read* accesses that a write to the same line
/// follows within [`RMW_WINDOW_CYCLES`] (never looking across a lock or
/// barrier) to exclusive mode.
///
/// # Panics
///
/// Panics if `marks.len() != stream.len()`.
pub fn mark_rmw_exclusive(stream: &ProcTrace, marks: &mut [PrefetchMark], geometry: CacheGeometry) {
    assert_eq!(marks.len(), stream.len(), "one mark per event required");
    let events = stream.events();
    for i in 0..events.len() {
        if !marks[i].prefetch || marks[i].is_write || marks[i].exclusive {
            continue;
        }
        let Some(access) = events[i].as_access() else { continue };
        let line = geometry.line(access.addr);
        let mut budget = RMW_WINDOW_CYCLES;
        for later in &events[i + 1..] {
            if later.is_sync() {
                break;
            }
            if let Some(a) = later.as_access() {
                if a.kind.is_write() && geometry.line(a.addr) == line {
                    marks[i].exclusive = true;
                    break;
                }
            }
            let cost = later.estimated_cycles();
            if cost >= budget {
                break;
            }
            budget -= cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_miss_marks;
    use charlie_trace::{Addr, TraceBuilder};

    fn marks_for(build: impl FnOnce(&mut charlie_trace::ProcTraceBuilder<'_>)) -> Vec<PrefetchMark> {
        let mut b = TraceBuilder::new(1);
        build(&mut b.proc(0));
        let t = b.build();
        let geometry = CacheGeometry::paper_default();
        let mut marks = oracle_miss_marks(t.proc(0), geometry);
        mark_rmw_exclusive(t.proc(0), &mut marks, geometry);
        marks
    }

    #[test]
    fn read_then_write_same_line_marked_exclusive() {
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).work(5).write(Addr::new(0x104));
        });
        assert!(m[0].prefetch && m[0].exclusive, "RMW idiom detected");
    }

    #[test]
    fn read_without_write_stays_shared() {
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).work(5).read(Addr::new(0x104));
        });
        assert!(m[0].prefetch && !m[0].exclusive);
    }

    #[test]
    fn write_to_other_line_ignored() {
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).write(Addr::new(0x200));
        });
        assert!(!m[0].exclusive);
    }

    #[test]
    fn window_limits_lookahead() {
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).work(500).write(Addr::new(0x104));
        });
        assert!(!m[0].exclusive, "write too far away");
    }

    #[test]
    fn sync_stops_lookahead() {
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).lock(0).write(Addr::new(0x104)).unlock(0);
        });
        assert!(!m[0].exclusive, "never looks across synchronization");
    }

    #[test]
    fn unmarked_reads_untouched() {
        // Second read of the line hits (not marked); it must stay inert even
        // though a write follows.
        let m = marks_for(|p| {
            p.read(Addr::new(0x100)).read(Addr::new(0x104)).write(Addr::new(0x108));
        });
        assert!(m[0].exclusive);
        assert!(!m[1].prefetch && !m[1].exclusive);
    }
}
