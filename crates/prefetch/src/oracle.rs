//! The oracle miss predictor: a uniprocessor filter-cache pass.

use crate::insert::PrefetchMark;
use charlie_cache::{CacheGeometry, FilterCache};
use charlie_trace::{ProcTrace, TraceEvent};

/// Runs the stream's demand accesses through a uniprocessor cache of the
/// same geometry as the real cache and marks the ones that miss.
///
/// This emulates the paper's off-line oracle: it "very accurately predict\[s\]
/// non-sharing cache hits and misses and never prefetches data that is not
/// used" — it sees leading references, capacity and conflict misses, but by
/// construction cannot see invalidation misses (those depend on the other
/// processors).
///
/// Returns one [`PrefetchMark`] per *event* of the stream (non-access events
/// get an inert mark), so the caller can zip marks with event indices.
pub fn oracle_miss_marks(stream: &ProcTrace, geometry: CacheGeometry) -> Vec<PrefetchMark> {
    let mut filter = FilterCache::new(geometry);
    stream
        .events()
        .iter()
        .map(|ev| match ev {
            TraceEvent::Access(a) => {
                let hit = filter.access(a.addr);
                PrefetchMark { prefetch: !hit, is_write: a.kind.is_write(), exclusive: false }
            }
            _ => PrefetchMark::inert(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::{Addr, TraceBuilder};

    fn marks(build: impl FnOnce(&mut charlie_trace::ProcTraceBuilder<'_>)) -> Vec<PrefetchMark> {
        let mut b = TraceBuilder::new(1);
        build(&mut b.proc(0));
        let t = b.build();
        oracle_miss_marks(t.proc(0), CacheGeometry::paper_default())
    }

    #[test]
    fn cold_miss_marked_same_line_hit_not() {
        let m = marks(|p| {
            p.read(Addr::new(0x100)).read(Addr::new(0x104));
        });
        assert!(m[0].prefetch);
        assert!(!m[1].prefetch);
    }

    #[test]
    fn conflict_misses_marked() {
        let m = marks(|p| {
            p.read(Addr::new(0x0)).read(Addr::new(0x8000)).read(Addr::new(0x0));
        });
        assert_eq!(m.iter().filter(|m| m.prefetch).count(), 3, "all three conflict");
    }

    #[test]
    fn non_access_events_are_inert() {
        let m = marks(|p| {
            p.work(10).lock(0).read(Addr::new(0x40)).unlock(0).barrier(0);
        });
        assert_eq!(m.len(), 5);
        assert!(!m[0].prefetch && !m[1].prefetch && !m[3].prefetch && !m[4].prefetch);
        assert!(m[2].prefetch);
    }

    #[test]
    fn write_flag_recorded() {
        let m = marks(|p| {
            p.write(Addr::new(0x40)).read(Addr::new(0x80));
        });
        assert!(m[0].is_write && m[0].prefetch);
        assert!(!m[1].is_write && m[1].prefetch);
    }
}
