//! On-line *hardware* prefetchers — the counterpart to the off-line oracle
//! family in [`crate::Strategy`].
//!
//! The paper's five strategies all assume perfect off-line knowledge of the
//! miss stream. A real machine has to predict misses from the access stream
//! it has already seen. This module provides three classic predictors the
//! simulator can drive *on-line*, issuing real bus transactions into the
//! prefetch buffers (ROADMAP open item 1):
//!
//! * [`HwPrefetcherKind::Stride`] — a reference-prediction table (RPT) in
//!   the style of Chen & Baer: per-stream entries with a last address, a
//!   stride and a 2-bit confidence counter. Once a stream's stride repeats,
//!   `degree` lines are prefetched `distance` strides ahead of each access.
//!   Traces carry no program counters, so entries are keyed on the 4 KB
//!   *address region* of the access — a stream through an array trains one
//!   entry per region it crosses, which behaves like a PC key for the
//!   array-walking loops the stride family targets.
//! * [`HwPrefetcherKind::Sms`] — a spatial-memory-streaming style
//!   footprint predictor: accesses are grouped into 64-line spatial regions;
//!   an active-generation table accumulates the bit-vector of lines touched
//!   per region, commits it to a pattern-history table when the generation
//!   ends (its tracking slot is reclaimed), and replays the recorded
//!   footprint the next time the region is re-entered.
//! * [`HwPrefetcherKind::Markov`] — a correlation (Markov) predictor for
//!   linked data: a table keyed on *miss* line address records the miss
//!   lines that followed it; on a miss the recorded successors (and their
//!   successors, up to `degree`) are prefetched. This is the only family
//!   with a chance on pointer chasing, where strides carry no information.
//!
//! All three are deterministic, integer-only, and bounded: tables are
//! direct-mapped fixed-size arrays (never iterated hash maps), so identical
//! access streams always produce identical prefetch streams.

use charlie_trace::{Addr, LineAddr};

/// Which on-line prefetcher a simulation runs, if any.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum HwPrefetcherKind {
    /// No hardware prefetcher (the default; the zero-cost path).
    #[default]
    Off,
    /// Per-region stride/stream prefetcher (reference-prediction table).
    Stride,
    /// Spatial-pattern (SMS-style footprint) prefetcher.
    Sms,
    /// Markov / pointer-chase correlation prefetcher.
    Markov,
}

impl HwPrefetcherKind {
    /// Every kind, reporting order.
    pub const ALL: [HwPrefetcherKind; 4] = [
        HwPrefetcherKind::Off,
        HwPrefetcherKind::Stride,
        HwPrefetcherKind::Sms,
        HwPrefetcherKind::Markov,
    ];

    /// The kinds that actually prefetch, reporting order.
    pub const ONLINE: [HwPrefetcherKind; 3] =
        [HwPrefetcherKind::Stride, HwPrefetcherKind::Sms, HwPrefetcherKind::Markov];

    /// Stable lower-case name (CLI/env spelling).
    pub fn name(self) -> &'static str {
        match self {
            HwPrefetcherKind::Off => "off",
            HwPrefetcherKind::Stride => "stride",
            HwPrefetcherKind::Sms => "sms",
            HwPrefetcherKind::Markov => "markov",
        }
    }

    /// Exhibit label ("HW-STRIDE" etc.).
    pub fn label(self) -> &'static str {
        match self {
            HwPrefetcherKind::Off => "OFF",
            HwPrefetcherKind::Stride => "HW-STRIDE",
            HwPrefetcherKind::Sms => "HW-SMS",
            HwPrefetcherKind::Markov => "HW-MARKOV",
        }
    }

    /// Parses a kind from its [`HwPrefetcherKind::name`] spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        HwPrefetcherKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown hardware prefetcher '{s}' (expected off, stride, sms, or markov)"))
    }
}

impl std::fmt::Display for HwPrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the on-line prefetcher attached to each processor.
///
/// The default ([`HwPrefetchConfig::OFF`]) disables the subsystem entirely;
/// a `degree` of 0 is equivalent to [`HwPrefetcherKind::Off`] regardless of
/// kind, so every "degree 0" spelling takes the identical zero-cost path.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct HwPrefetchConfig {
    /// Predictor family.
    pub kind: HwPrefetcherKind,
    /// Maximum prefetches issued per triggering access (0 disables).
    pub degree: u8,
    /// Lookahead in strides for the stride prefetcher (how far ahead of the
    /// demand stream predictions run); ignored by SMS and Markov.
    pub distance: u8,
}

impl HwPrefetchConfig {
    /// The disabled configuration (also the [`Default`]).
    pub const OFF: HwPrefetchConfig =
        HwPrefetchConfig { kind: HwPrefetcherKind::Off, degree: 0, distance: 0 };

    /// A stride prefetcher with the given degree and lookahead distance.
    pub const fn stride(degree: u8, distance: u8) -> Self {
        HwPrefetchConfig { kind: HwPrefetcherKind::Stride, degree, distance }
    }

    /// An SMS-style footprint prefetcher with the given degree.
    pub const fn sms(degree: u8) -> Self {
        HwPrefetchConfig { kind: HwPrefetcherKind::Sms, degree, distance: 0 }
    }

    /// A Markov correlation prefetcher with the given degree.
    pub const fn markov(degree: u8) -> Self {
        HwPrefetchConfig { kind: HwPrefetcherKind::Markov, degree, distance: 0 }
    }

    /// `true` when a predictor is configured *and* allowed to issue
    /// anything. Everything else — including any kind at degree 0 — is the
    /// zero-cost disabled path.
    pub fn is_enabled(self) -> bool {
        self.kind != HwPrefetcherKind::Off && self.degree > 0
    }

    /// Parses `kind[:degree[:distance]]`, e.g. `stride:2:4`, `markov:2`,
    /// `off`. Omitted degree defaults to 2, omitted distance to 4.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind = HwPrefetcherKind::parse(parts.next().unwrap_or(""))?;
        let parse_u8 = |part: Option<&str>, what: &str, default: u8| -> Result<u8, String> {
            match part {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| format!("invalid {what} '{v}' (expected 0-255)")),
            }
        };
        let degree = parse_u8(parts.next(), "degree", 2)?;
        let distance = parse_u8(parts.next(), "distance", 4)?;
        if let Some(extra) = parts.next() {
            return Err(format!("trailing '{extra}' in hardware-prefetcher spec '{s}'"));
        }
        Ok(HwPrefetchConfig { kind, degree, distance })
    }
}

impl std::fmt::Display for HwPrefetchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.kind, self.degree, self.distance)
    }
}

/// An on-line hardware prefetcher: one instance per processor, driven by
/// that processor's retired demand accesses.
///
/// The simulator calls [`Prefetcher::on_access`] once per retired demand
/// access (with `is_miss` telling whether it missed the cache), collects the
/// predicted lines from `out`, and issues them through the ordinary
/// prefetch-buffer/bus path. Predictions the machine cannot use (already
/// resident, already in flight, buffer full) are silently dropped — a
/// hardware prefetcher never stalls the processor. [`Prefetcher::on_invalidate`]
/// reports remote invalidations of cached lines so predictors can drop
/// stale state.
///
/// Implementations must be deterministic: the same call sequence must
/// produce the same predictions (no ambient randomness, no iteration over
/// unordered containers).
pub trait Prefetcher: Send {
    /// Observes one retired demand access and appends predicted prefetch
    /// lines to `out` (never more than the configured degree's worth).
    /// Returns `true` when a training-table entry was created or updated,
    /// so the machine can count/trace `trained` events.
    fn on_access(&mut self, addr: Addr, line: LineAddr, is_miss: bool, out: &mut Vec<LineAddr>)
        -> bool;

    /// Observes the invalidation of `line` in this processor's cache by a
    /// remote writer. The default does nothing.
    fn on_invalidate(&mut self, _line: LineAddr) {}
}

/// Builds the configured predictor, or `None` for the disabled path.
/// `block_bytes` is the cache-line size predictions are expressed in.
pub fn new_prefetcher(cfg: HwPrefetchConfig, block_bytes: u64) -> Option<Box<dyn Prefetcher>> {
    if !cfg.is_enabled() {
        return None;
    }
    assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
    match cfg.kind {
        HwPrefetcherKind::Off => None,
        HwPrefetcherKind::Stride => Some(Box::new(StridePrefetcher::new(cfg, block_bytes))),
        HwPrefetcherKind::Sms => Some(Box::new(SmsPrefetcher::new(cfg, block_bytes))),
        HwPrefetcherKind::Markov => Some(Box::new(MarkovPrefetcher::new(cfg))),
    }
}

// ---------------------------------------------------------------------------
// Stride / stream: reference-prediction table.
// ---------------------------------------------------------------------------

/// Address bits identifying an RPT stream (4 KB regions stand in for the
/// program counter, which traces do not carry).
const STRIDE_REGION_SHIFT: u32 = 12;
/// RPT size (direct-mapped).
const STRIDE_TABLE: usize = 256;
/// Confidence ceiling (2-bit counter) and prediction threshold.
const STRIDE_CONF_MAX: u8 = 3;
const STRIDE_CONF_THRESHOLD: u8 = 2;

#[derive(Copy, Clone, Debug)]
struct StrideEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Chen–Baer style stride prefetcher over a direct-mapped RPT.
pub struct StridePrefetcher {
    cfg: HwPrefetchConfig,
    block_bytes: u64,
    table: Vec<Option<StrideEntry>>,
}

impl StridePrefetcher {
    /// Creates an RPT-based stride prefetcher.
    pub fn new(cfg: HwPrefetchConfig, block_bytes: u64) -> Self {
        StridePrefetcher { cfg, block_bytes, table: vec![None; STRIDE_TABLE] }
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_access(
        &mut self,
        addr: Addr,
        line: LineAddr,
        _is_miss: bool,
        out: &mut Vec<LineAddr>,
    ) -> bool {
        let region = addr.raw() >> STRIDE_REGION_SHIFT;
        let slot = (region as usize) % STRIDE_TABLE;
        let entry = match &mut self.table[slot] {
            Some(e) if e.tag == region => e,
            other => {
                *other = Some(StrideEntry {
                    tag: region,
                    last_addr: addr.raw(),
                    stride: 0,
                    confidence: 0,
                });
                return true;
            }
        };
        let observed = addr.raw() as i64 - entry.last_addr as i64;
        entry.last_addr = addr.raw();
        if observed == 0 {
            // Same word re-touched: no stream information either way.
            return true;
        }
        if observed == entry.stride {
            entry.confidence = (entry.confidence + 1).min(STRIDE_CONF_MAX);
        } else if entry.confidence > 0 {
            entry.confidence -= 1;
        } else {
            entry.stride = observed;
        }
        if entry.confidence >= STRIDE_CONF_THRESHOLD {
            // Predict `degree` consecutive stream elements, `distance`
            // strides ahead; collapse to distinct lines past the current one.
            let stride = entry.stride;
            let base = addr.raw() as i64;
            for k in 0..u64::from(self.cfg.degree) {
                let ahead = i64::from(self.cfg.distance) + k as i64 + 1;
                let Some(pred) = base.checked_add(stride.saturating_mul(ahead)) else { break };
                if pred < 0 {
                    break;
                }
                let pline = Addr::new(pred as u64).line(self.block_bytes);
                if pline != line && !out.contains(&pline) {
                    out.push(pline);
                }
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// SMS: spatial footprints per region.
// ---------------------------------------------------------------------------

/// Lines per spatial region (bit-vector width).
const SMS_REGION_LINES: u64 = 64;
/// Active-generation table size (direct-mapped); reclaiming a slot ends
/// that generation and commits its footprint.
const SMS_AGT: usize = 64;
/// Pattern-history table size (direct-mapped).
const SMS_PHT: usize = 256;

#[derive(Copy, Clone, Debug)]
struct SmsGeneration {
    region: u64,
    bits: u64,
}

#[derive(Copy, Clone, Debug)]
struct SmsPattern {
    region: u64,
    bits: u64,
}

/// Spatial-pattern prefetcher: trains region footprints on generation end,
/// replays them on the trigger access that re-enters the region.
pub struct SmsPrefetcher {
    cfg: HwPrefetchConfig,
    active: Vec<Option<SmsGeneration>>,
    patterns: Vec<Option<SmsPattern>>,
}

impl SmsPrefetcher {
    /// Creates an SMS-style footprint prefetcher. Predictions are
    /// line-granular, so the cache-line size does not matter here; the
    /// constructor takes it anyway for signature uniformity.
    pub fn new(cfg: HwPrefetchConfig, _block_bytes: u64) -> Self {
        SmsPrefetcher { cfg, active: vec![None; SMS_AGT], patterns: vec![None; SMS_PHT] }
    }

    fn commit(&mut self, generation: SmsGeneration) {
        // Footprints of a single line predict nothing; don't displace a
        // richer stored pattern with one.
        if generation.bits.count_ones() < 2 {
            return;
        }
        let slot = (generation.region as usize) % SMS_PHT;
        self.patterns[slot] = Some(SmsPattern { region: generation.region, bits: generation.bits });
    }
}

impl Prefetcher for SmsPrefetcher {
    fn on_access(
        &mut self,
        _addr: Addr,
        line: LineAddr,
        _is_miss: bool,
        out: &mut Vec<LineAddr>,
    ) -> bool {
        let region = line.raw() / SMS_REGION_LINES;
        let offset = line.raw() % SMS_REGION_LINES;
        let slot = (region as usize) % SMS_AGT;
        match self.active[slot] {
            Some(ref mut g) if g.region == region => {
                let bit = 1u64 << offset;
                if g.bits & bit != 0 {
                    return false; // already recorded; nothing learned
                }
                g.bits |= bit;
                true
            }
            displaced => {
                // A new generation starts: commit whatever this slot was
                // tracking, then replay the stored footprint (if any) around
                // the trigger line.
                if let Some(g) = displaced {
                    self.commit(g);
                }
                self.active[slot] =
                    Some(SmsGeneration { region, bits: 1u64 << offset });
                let pslot = (region as usize) % SMS_PHT;
                if let Some(p) = self.patterns[pslot] {
                    if p.region == region {
                        // Replay in ascending offset order starting after the
                        // trigger, wrapping, capped at 4x degree.
                        let cap = 4 * usize::from(self.cfg.degree);
                        let base = region * SMS_REGION_LINES;
                        for step in 1..SMS_REGION_LINES {
                            if out.len() >= cap {
                                break;
                            }
                            let off = (offset + step) % SMS_REGION_LINES;
                            if p.bits & (1u64 << off) != 0 {
                                out.push(LineAddr::from_raw(base + off));
                            }
                        }
                    }
                }
                true
            }
        }
    }

    fn on_invalidate(&mut self, line: LineAddr) {
        // A remote write to the region makes the in-flight footprint stale;
        // drop the bit so it is not committed as part of this generation.
        let region = line.raw() / SMS_REGION_LINES;
        let offset = line.raw() % SMS_REGION_LINES;
        let slot = (region as usize) % SMS_AGT;
        if let Some(g) = &mut self.active[slot] {
            if g.region == region {
                g.bits &= !(1u64 << offset);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Markov: miss-address correlation.
// ---------------------------------------------------------------------------

/// Correlation-table size (direct-mapped) and successors kept per entry
/// (MRU order). Correlation predictors need capacity on the order of the
/// miss working set (Joseph & Grunwald sized theirs in megabytes): with a
/// pointer chase over a few thousand lines, a few-hundred-entry table is
/// displaced faster than any successor pair can be reused, and the
/// predictor never fires at all. 8 Ki entries comfortably holds the
/// linked-structure working sets the paper-scale workloads produce.
const MARKOV_TABLE: usize = 8192;
const MARKOV_SUCCESSORS: usize = 2;

#[derive(Copy, Clone, Debug)]
struct MarkovEntry {
    tag: LineAddr,
    succ: [Option<LineAddr>; MARKOV_SUCCESSORS],
}

/// Markov (correlation) prefetcher trained on the miss-line stream.
pub struct MarkovPrefetcher {
    cfg: HwPrefetchConfig,
    table: Vec<Option<MarkovEntry>>,
    last_miss: Option<LineAddr>,
}

impl MarkovPrefetcher {
    /// Creates a miss-correlation prefetcher.
    pub fn new(cfg: HwPrefetchConfig) -> Self {
        MarkovPrefetcher { cfg, table: vec![None; MARKOV_TABLE], last_miss: None }
    }

    fn slot(line: LineAddr) -> usize {
        (line.raw() as usize) % MARKOV_TABLE
    }

    /// Records `next` as the most-recent successor of `prev`.
    fn train(&mut self, prev: LineAddr, next: LineAddr) {
        let slot = Self::slot(prev);
        let entry = match &mut self.table[slot] {
            Some(e) if e.tag == prev => e,
            other => {
                *other = Some(MarkovEntry { tag: prev, succ: [Some(next), None] });
                return;
            }
        };
        if entry.succ[0] == Some(next) {
            return;
        }
        entry.succ[1] = entry.succ[0];
        entry.succ[0] = Some(next);
    }

    fn successors(&self, line: LineAddr) -> Option<&MarkovEntry> {
        match &self.table[Self::slot(line)] {
            Some(e) if e.tag == line => Some(e),
            _ => None,
        }
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_access(
        &mut self,
        _addr: Addr,
        line: LineAddr,
        is_miss: bool,
        out: &mut Vec<LineAddr>,
    ) -> bool {
        if !is_miss {
            return false;
        }
        let trained = match self.last_miss.take() {
            Some(prev) if prev != line => {
                self.train(prev, line);
                true
            }
            _ => false,
        };
        self.last_miss = Some(line);
        // Walk the correlation chain breadth-first from this miss, up to
        // `degree` predictions.
        let degree = usize::from(self.cfg.degree);
        let mut cur = line;
        while out.len() < degree {
            let Some(entry) = self.successors(cur) else { break };
            let mut advanced = false;
            for s in entry.succ.into_iter().flatten() {
                if out.len() < degree && s != line && !out.contains(&s) {
                    out.push(s);
                    advanced = true;
                }
            }
            let Some(next) = entry.succ[0] else { break };
            if !advanced {
                break; // cycle: everything here is already predicted
            }
            cur = next;
        }
        trained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(out: &[LineAddr]) -> Vec<u64> {
        out.iter().map(|l| l.raw()).collect()
    }

    #[test]
    fn config_parsing_round_trips() {
        assert_eq!(
            HwPrefetchConfig::parse("off"),
            Ok(HwPrefetchConfig { kind: HwPrefetcherKind::Off, degree: 2, distance: 4 })
        );
        assert_eq!(
            HwPrefetchConfig::parse("stride:2:4"),
            Ok(HwPrefetchConfig::stride(2, 4))
        );
        assert_eq!(HwPrefetchConfig::parse("markov:3"), Ok(HwPrefetchConfig {
            kind: HwPrefetcherKind::Markov,
            degree: 3,
            distance: 4,
        }));
        assert!(HwPrefetchConfig::parse("bogus").is_err());
        assert!(HwPrefetchConfig::parse("stride:x").is_err());
        assert!(HwPrefetchConfig::parse("stride:1:2:3").is_err());
        for k in HwPrefetcherKind::ALL {
            assert_eq!(HwPrefetcherKind::parse(k.name()), Ok(k));
        }
    }

    #[test]
    fn degree_zero_is_disabled() {
        assert!(!HwPrefetchConfig::stride(0, 4).is_enabled());
        assert!(!HwPrefetchConfig::sms(0).is_enabled());
        assert!(!HwPrefetchConfig::markov(0).is_enabled());
        assert!(!HwPrefetchConfig::OFF.is_enabled());
        assert!(HwPrefetchConfig::stride(1, 1).is_enabled());
        assert!(new_prefetcher(HwPrefetchConfig::stride(0, 4), 32).is_none());
        assert!(new_prefetcher(HwPrefetchConfig::OFF, 32).is_none());
        assert!(new_prefetcher(HwPrefetchConfig::markov(2), 32).is_some());
    }

    #[test]
    fn stride_locks_onto_stream() {
        let mut p = StridePrefetcher::new(HwPrefetchConfig::stride(2, 1), 32);
        let mut out = Vec::new();
        // Stride of one line (32 bytes): confidence builds after 3 accesses.
        for i in 0..8u64 {
            out.clear();
            let addr = Addr::new(0x1000 + i * 32);
            p.on_access(addr, addr.line(32), true, &mut out);
        }
        // Last access at 0x10e0 (line 0x87); distance 1, degree 2 →
        // predictions two and three strides ahead.
        assert_eq!(lines(&out), vec![0x89, 0x8a]);
    }

    #[test]
    fn stride_ignores_random_stream() {
        let mut p = StridePrefetcher::new(HwPrefetchConfig::stride(2, 1), 32);
        let mut out = Vec::new();
        // A pointer-chase-looking sequence with no repeating stride.
        for a in [0x1000u64, 0x5204, 0x2a30, 0x9158, 0x3c7c, 0x60a0] {
            let addr = Addr::new(a);
            p.on_access(addr, addr.line(32), true, &mut out);
        }
        assert!(out.is_empty(), "no confident stride, no predictions: {out:?}");
    }

    #[test]
    fn stride_sub_line_stride_collapses_to_lines() {
        let mut p = StridePrefetcher::new(HwPrefetchConfig::stride(4, 0), 32);
        let mut out = Vec::new();
        for i in 0..16u64 {
            out.clear();
            let addr = Addr::new(0x2000 + i * 4);
            p.on_access(addr, addr.line(32), true, &mut out);
        }
        // 4-byte strides predict within-line addresses that collapse to at
        // most two distinct lines, none equal to the current one.
        let last_line = Addr::new(0x2000 + 15 * 4).line(32);
        assert!(!out.is_empty());
        assert!(!out.contains(&last_line));
        let mut dedup = out.clone();
        dedup.dedup();
        assert_eq!(dedup, out, "no duplicate lines in one prediction batch");
    }

    #[test]
    fn sms_replays_footprint_on_reentry() {
        let mut p = SmsPrefetcher::new(HwPrefetchConfig::sms(2), 32);
        let mut out = Vec::new();
        // Generation 1: touch lines {0, 3, 7} of region 0.
        for l in [0u64, 3, 7] {
            p.on_access(Addr::new(l * 32), LineAddr::from_raw(l), true, &mut out);
        }
        assert!(out.is_empty(), "first generation has nothing to replay");
        // Conflicting region (same AGT slot: region 64) ends generation 1.
        p.on_access(
            Addr::new(64 * SMS_REGION_LINES * 32),
            LineAddr::from_raw(64 * SMS_REGION_LINES),
            true,
            &mut out,
        );
        assert!(out.is_empty());
        // Re-enter region 0 at line 3: the stored footprint replays.
        p.on_access(Addr::new(3 * 32), LineAddr::from_raw(3), true, &mut out);
        assert_eq!(lines(&out), vec![7, 0], "offsets after the trigger, wrapping");
    }

    #[test]
    fn sms_invalidate_drops_footprint_bit() {
        let mut p = SmsPrefetcher::new(HwPrefetchConfig::sms(2), 32);
        let mut out = Vec::new();
        for l in [0u64, 3, 7] {
            p.on_access(Addr::new(l * 32), LineAddr::from_raw(l), true, &mut out);
        }
        p.on_invalidate(LineAddr::from_raw(7));
        // End the generation, re-enter: line 7 is no longer in the pattern.
        p.on_access(
            Addr::new(64 * SMS_REGION_LINES * 32),
            LineAddr::from_raw(64 * SMS_REGION_LINES),
            true,
            &mut out,
        );
        p.on_access(Addr::new(0), LineAddr::from_raw(0), true, &mut out);
        assert_eq!(lines(&out), vec![3]);
    }

    #[test]
    fn markov_predicts_recorded_successors() {
        let mut p = MarkovPrefetcher::new(HwPrefetchConfig::markov(2));
        let mut out = Vec::new();
        let chase = [0x10u64, 0x95, 0x42, 0x10, 0x95, 0x42];
        for l in chase {
            out.clear();
            p.on_access(Addr::new(l * 32), LineAddr::from_raw(l), true, &mut out);
        }
        // After one full revisit, 0x42's successor (0x10) and its successor
        // (0x95) are both predicted.
        assert_eq!(lines(&out), vec![0x10, 0x95]);
    }

    #[test]
    fn markov_trains_only_on_misses() {
        let mut p = MarkovPrefetcher::new(HwPrefetchConfig::markov(2));
        let mut out = Vec::new();
        assert!(!p.on_access(Addr::new(0x100), LineAddr::from_raw(8), false, &mut out));
        assert!(out.is_empty());
        // First miss establishes last_miss but trains nothing yet.
        assert!(!p.on_access(Addr::new(0x200), LineAddr::from_raw(16), true, &mut out));
        // Second miss records the 16 → 24 transition.
        assert!(p.on_access(Addr::new(0x300), LineAddr::from_raw(24), true, &mut out));
    }

    #[test]
    fn markov_chain_walk_stops_on_cycle() {
        let mut p = MarkovPrefetcher::new(HwPrefetchConfig::markov(8));
        let mut out = Vec::new();
        // Two-node cycle A → B → A → B …
        for l in [1u64, 2, 1, 2, 1] {
            out.clear();
            p.on_access(Addr::new(l * 32), LineAddr::from_raw(l), true, &mut out);
        }
        // Degree 8 must not loop forever; the cycle yields one prediction.
        assert_eq!(lines(&out), vec![2]);
    }

    #[test]
    fn display_and_labels() {
        assert_eq!(HwPrefetchConfig::stride(2, 4).to_string(), "stride:2:4");
        assert_eq!(HwPrefetcherKind::Markov.label(), "HW-MARKOV");
        assert_eq!(HwPrefetcherKind::Off.to_string(), "off");
    }
}
