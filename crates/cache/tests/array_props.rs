//! Property tests for the cache array: random operation sequences must
//! preserve structural invariants, with and without a victim buffer.

use charlie_cache::{CacheArray, CacheGeometry, LineState, Probe, Protocol};
use charlie_trace::Addr;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Fill { line: u64, state: u8, by_prefetch: bool },
    Invalidate { line: u64, word: u8 },
    Downgrade { line: u64 },
    Recall { line: u64 },
}

fn arb_ops() -> impl proptest::strategy::Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u64..96, 0u8..3, any::<bool>())
            .prop_map(|(line, state, by_prefetch)| Op::Fill { line, state, by_prefetch }),
        (0u64..96, 0u8..8).prop_map(|(line, word)| Op::Invalidate { line, word }),
        (0u64..96).prop_map(|line| Op::Downgrade { line }),
        (0u64..96).prop_map(|line| Op::Recall { line }),
    ];
    proptest::collection::vec(op, 1..300)
}

fn state_of(code: u8) -> LineState {
    match code {
        0 => LineState::Shared,
        1 => LineState::PrivateClean,
        _ => LineState::PrivateDirty,
    }
}

/// A tiny cache (8 sets, direct-mapped) so conflicts are frequent.
fn tiny(victim: usize) -> CacheArray {
    CacheArray::with_victim(CacheGeometry::new(8 * 32, 32, 1).unwrap(), victim)
}

fn check_invariants(cache: &CacheArray, capacity: usize) {
    // Never more valid lines than frames + victim entries.
    assert!(cache.num_valid() <= 8 + cache.victim_capacity());
    let _ = capacity;
    // Every line listed by iter_valid must be found by state_of.
    let mut seen = std::collections::HashSet::new();
    for (line, state) in cache.iter_valid() {
        assert!(state.is_valid());
        assert!(seen.insert(line), "a line appears at most once in the hierarchy: {line}");
        assert_eq!(cache.state_of(line), Some(state));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_ops_preserve_invariants(ops in arb_ops(), victim in 0usize..4) {
        let mut cache = tiny(victim);
        for op in &ops {
            match *op {
                Op::Fill { line, state, by_prefetch } => {
                    let addr = Addr::new(line * 32);
                    let evicted = cache.fill(addr.line(32), state_of(state), by_prefetch);
                    if let Some(e) = evicted {
                        prop_assert!(e.state.is_valid());
                        // The evicted line is gone from the hierarchy.
                        prop_assert_eq!(cache.state_of(e.line), None);
                    }
                    prop_assert!(cache.probe_line(addr.line(32)).is_hit());
                }
                Op::Invalidate { line, word } => {
                    let l = Addr::new(line * 32).line(32);
                    cache.snoop_invalidate(l, u32::from(word));
                    prop_assert_eq!(cache.state_of(l), None, "invalidated line must be gone");
                }
                Op::Downgrade { line } => {
                    let l = Addr::new(line * 32).line(32);
                    if cache.snoop_downgrade(l, Protocol::WriteInvalidate).is_some() {
                        prop_assert_eq!(cache.state_of(l), Some(LineState::Shared));
                    }
                }
                Op::Recall { line } => {
                    let l = Addr::new(line * 32).line(32);
                    let was_buffered = cache.probe_victim(l);
                    cache.recall_from_victim(l);
                    if was_buffered {
                        prop_assert!(cache.probe_line(l).is_hit(), "recalled into the main array");
                        prop_assert!(!cache.probe_victim(l));
                    }
                }
            }
            check_invariants(&cache, victim);
        }
    }

    /// Without coherence events, a fill is always observable until evicted,
    /// and the number of valid lines never exceeds distinct lines filled.
    #[test]
    fn fills_are_observable(lines in proptest::collection::vec(0u64..64, 1..100)) {
        let mut cache = tiny(2);
        let mut distinct = std::collections::HashSet::new();
        for &line in &lines {
            let l = Addr::new(line * 32).line(32);
            cache.fill(l, LineState::Shared, false);
            distinct.insert(line);
            prop_assert!(cache.probe_line(l).is_hit());
            prop_assert!(cache.num_valid() <= distinct.len());
        }
    }

    /// An invalidated main-array frame keeps its tag (the paper's
    /// invalidation-miss classification) until something overwrites it.
    #[test]
    fn invalidation_leaves_a_ghost(line in 0u64..64, word in 0u32..8) {
        let mut cache = tiny(0);
        let l = Addr::new(line * 32).line(32);
        cache.fill(l, LineState::Shared, false);
        cache.snoop_invalidate(l, word);
        match cache.probe_line(l) {
            Probe::InvalidatedMatch { way } => {
                prop_assert_eq!(cache.frame(l, way).inval_word(), Some(word));
            }
            other => prop_assert!(false, "expected ghost, got {:?}", other),
        }
    }
}
