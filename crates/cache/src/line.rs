//! Per-line metadata: coherence state plus the bookkeeping the paper's miss
//! taxonomy needs (per-word access masks, prefetch provenance, invalidation
//! cause).

use crate::state::LineState;
use std::fmt;

/// A set of word indices within one cache block (up to 64 words).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct WordMask(u64);

impl WordMask {
    /// The empty mask.
    pub const EMPTY: WordMask = WordMask(0);

    /// Adds word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= 64`.
    pub fn insert(&mut self, w: u32) {
        assert!(w < 64, "word index out of range");
        self.0 |= 1 << w;
    }

    /// Returns `true` if word `w` is in the mask.
    pub fn contains(self, w: u32) -> bool {
        w < 64 && self.0 & (1 << w) != 0
    }

    /// Number of words in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordMask({:#b})", self.0)
    }
}

/// Metadata for one cache frame.
///
/// Besides tag and coherence state, a line carries what the paper's CPU-miss
/// component analysis (Figure 3) and false-sharing classification (Table 3)
/// require:
///
/// * which words the local processor touched while the line was resident
///   (frozen when the line is invalidated, so a later miss can be classified
///   as true or false sharing);
/// * whether the current (or, after invalidation, the last) fill was brought
///   in by a prefetch, and whether any demand access used it since;
/// * the word whose remote write invalidated the line.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheLine {
    tag: u64,
    state: LineState,
    ever_filled: bool,
    accessed: WordMask,
    inval_word: Option<u32>,
    filled_by_prefetch: bool,
    used_since_fill: bool,
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine {
            tag: 0,
            state: LineState::Invalid,
            ever_filled: false,
            accessed: WordMask::EMPTY,
            inval_word: None,
            filled_by_prefetch: false,
            used_since_fill: false,
        }
    }
}

impl CacheLine {
    /// An empty (never filled) frame.
    pub fn new() -> Self {
        CacheLine::default()
    }

    /// Current coherence state.
    pub fn state(&self) -> LineState {
        self.state
    }

    /// Tag of the resident (or last-resident) line. Meaningless until the
    /// frame has been filled once; see [`CacheLine::matches`].
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` when the frame has ever held a line with tag `tag` (including a
    /// now-invalidated one).
    pub fn matches(&self, tag: u64) -> bool {
        self.ever_filled && self.tag == tag
    }

    /// `true` when the frame holds a *valid* line with tag `tag`.
    pub fn hit(&self, tag: u64) -> bool {
        self.matches(tag) && self.state.is_valid()
    }

    /// Words the local processor accessed while the line was resident. After
    /// an invalidation this stays frozen so the next miss can be classified.
    pub fn accessed_words(&self) -> WordMask {
        self.accessed
    }

    /// The word whose remote write invalidated this line, if the frame's
    /// current tag was invalidated (rather than never filled or replaced).
    pub fn inval_word(&self) -> Option<u32> {
        self.inval_word
    }

    /// `true` if the resident line was brought in by a prefetch.
    pub fn filled_by_prefetch(&self) -> bool {
        self.filled_by_prefetch
    }

    /// `true` if any demand access touched the line since its last fill.
    pub fn used_since_fill(&self) -> bool {
        self.used_since_fill
    }

    /// Installs a new line in the frame, resetting all bookkeeping.
    pub fn fill(&mut self, tag: u64, state: LineState, by_prefetch: bool) {
        debug_assert!(state.is_valid(), "cannot fill into Invalid state");
        self.tag = tag;
        self.state = state;
        self.ever_filled = true;
        self.accessed = WordMask::EMPTY;
        self.inval_word = None;
        self.filled_by_prefetch = by_prefetch;
        self.used_since_fill = false;
    }

    /// Records a demand access to word `w` (hit path) and applies the state
    /// transition `new_state` computed by the protocol.
    pub fn record_access(&mut self, w: u32, new_state: LineState) {
        debug_assert!(self.state.is_valid(), "demand access recorded on invalid line");
        self.accessed.insert(w);
        self.used_since_fill = true;
        self.state = new_state;
    }

    /// Applies a snoop-induced state change that keeps the line valid
    /// (e.g. private → shared on a remote read).
    pub fn downgrade(&mut self, new_state: LineState) {
        debug_assert!(new_state.is_valid());
        self.state = new_state;
    }

    /// Invalidates the line because a remote processor wrote word `w`
    /// (read-exclusive or upgrade snoop). The access mask freezes so the next
    /// local miss on this tag can be classified as true or false sharing.
    pub fn invalidate_by_remote_write(&mut self, w: u32) {
        self.state = LineState::Invalid;
        self.inval_word = Some(w);
    }

    /// Marks the private-clean → private-dirty silent upgrade or completes an
    /// upgrade transaction: the local write of word `w` retires.
    pub fn record_write_retire(&mut self, w: u32) {
        debug_assert!(self.state.is_valid());
        self.accessed.insert(w);
        self.used_since_fill = true;
        self.state = LineState::PrivateDirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_mask_ops() {
        let mut m = WordMask::EMPTY;
        assert!(m.is_empty());
        m.insert(0);
        m.insert(7);
        assert!(m.contains(0));
        assert!(m.contains(7));
        assert!(!m.contains(3));
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_mask_rejects_large_index() {
        let mut m = WordMask::EMPTY;
        m.insert(64);
    }

    #[test]
    fn fresh_frame_misses_everything() {
        let l = CacheLine::new();
        assert!(!l.matches(0));
        assert!(!l.hit(0));
        assert_eq!(l.state(), LineState::Invalid);
    }

    #[test]
    fn fill_then_hit() {
        let mut l = CacheLine::new();
        l.fill(0x42, LineState::Shared, false);
        assert!(l.hit(0x42));
        assert!(!l.hit(0x43));
        assert!(!l.filled_by_prefetch());
        assert!(!l.used_since_fill());
    }

    #[test]
    fn invalidation_keeps_tag_and_freezes_mask() {
        let mut l = CacheLine::new();
        l.fill(0x42, LineState::Shared, false);
        l.record_access(3, LineState::Shared);
        l.invalidate_by_remote_write(5);
        assert!(!l.hit(0x42));
        assert!(l.matches(0x42)); // invalidation miss: tags match, state invalid
        assert_eq!(l.inval_word(), Some(5));
        assert!(l.accessed_words().contains(3));
        assert!(!l.accessed_words().contains(5)); // => false sharing
    }

    #[test]
    fn refill_resets_bookkeeping() {
        let mut l = CacheLine::new();
        l.fill(0x42, LineState::Shared, true);
        l.record_access(1, LineState::Shared);
        l.invalidate_by_remote_write(1);
        l.fill(0x99, LineState::PrivateClean, false);
        assert!(l.hit(0x99));
        assert_eq!(l.inval_word(), None);
        assert!(l.accessed_words().is_empty());
        assert!(!l.used_since_fill());
        assert!(!l.filled_by_prefetch());
    }

    #[test]
    fn prefetch_provenance_tracked() {
        let mut l = CacheLine::new();
        l.fill(0x10, LineState::PrivateClean, true);
        assert!(l.filled_by_prefetch());
        assert!(!l.used_since_fill());
        l.record_access(0, LineState::PrivateClean);
        assert!(l.used_since_fill());
    }

    #[test]
    fn write_retire_dirties() {
        let mut l = CacheLine::new();
        l.fill(0x10, LineState::PrivateClean, false);
        l.record_write_retire(2);
        assert_eq!(l.state(), LineState::PrivateDirty);
        assert!(l.accessed_words().contains(2));
    }

    #[test]
    fn downgrade_keeps_validity() {
        let mut l = CacheLine::new();
        l.fill(0x10, LineState::PrivateDirty, false);
        l.downgrade(LineState::Shared);
        assert_eq!(l.state(), LineState::Shared);
        assert!(l.hit(0x10));
    }
}
