//! Cache substrate for the `charlie` multiprocessor simulator.
//!
//! Provides the building blocks the simulator composes:
//!
//! * [`CacheGeometry`] — parametric size/block/associativity address math;
//! * [`LineState`] and the [`protocol`] module — the snooping coherence
//!   protocols ([`Protocol`]): the paper's Illinois write-invalidate (MESI
//!   with a private-clean fill on unshared reads, after Papamarcos & Patel,
//!   ISCA 1984), a Firefly-style write-update, Dragon write-update, and
//!   MOESI, as pure transition functions dispatched on the protocol enum;
//! * [`CacheArray`] — a set-associative (or direct-mapped) cache of
//!   [`CacheLine`] metadata with LRU replacement, per-word access bitmaps for
//!   false-sharing classification, and prefetch-provenance tracking;
//! * [`FilterCache`] — the simple uniprocessor cache the off-line "oracle"
//!   prefetcher and the PWS write-shared filter are built from.
//!
//! The arrays model *metadata only* (tags and states); no data values are
//! stored, since trace-driven simulation never needs them.
//!
//! # Example
//!
//! ```
//! use charlie_cache::{CacheArray, CacheGeometry, LineState};
//! use charlie_trace::{AccessKind, Addr};
//!
//! let geom = CacheGeometry::new(32 * 1024, 32, 1)?; // the paper's cache
//! let mut cache = CacheArray::new(geom);
//! let addr = Addr::new(0x1234);
//! assert!(!cache.probe(addr).is_hit());
//! cache.fill(addr.line(32), LineState::PrivateClean, false);
//! assert!(cache.probe(addr).is_hit());
//! # Ok::<(), charlie_cache::GeometryError>(())
//! ```

mod array;
mod filter;
mod geometry;
mod line;
pub mod protocol;
mod state;
mod victim;

pub use array::{CacheArray, EvictedLine, Probe};
pub use filter::FilterCache;
pub use geometry::{CacheGeometry, GeometryError};
pub use line::{CacheLine, WordMask};
pub use protocol::Protocol;
pub use state::LineState;
