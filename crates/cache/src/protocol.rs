//! The Illinois coherence protocol as pure transition functions.
//!
//! The simulator composes these with [`crate::CacheArray`] and the bus model;
//! keeping the transitions side-effect-free makes the protocol independently
//! testable (including by property tests over random access interleavings).
//!
//! Transactions observed on the bus, from the point of view of coherence:
//!
//! * [`BusOp::Read`] — read-miss fill; other caches downgrade to shared, a
//!   dirty owner supplies the data and writes back.
//! * [`BusOp::ReadExclusive`] — write-miss or exclusive-prefetch fill; other
//!   caches invalidate.
//! * [`BusOp::Upgrade`] — invalidation-only transaction for a write hit on a
//!   shared line; no data transfer.
//! * [`BusOp::WriteBack`] — dirty-victim copy-back; no coherence action.

use crate::state::LineState;

/// Bus transaction kinds that participate in coherence.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BusOp {
    /// Shared-mode fill (read miss or shared-mode prefetch).
    Read,
    /// Exclusive-mode fill (write miss or exclusive prefetch).
    ReadExclusive,
    /// Invalidation-only upgrade (write hit on a shared line).
    Upgrade,
    /// Dirty-victim copy-back.
    WriteBack,
}

impl BusOp {
    /// `true` for transactions that move a full cache block over the bus.
    pub const fn transfers_data(self) -> bool {
        matches!(self, BusOp::Read | BusOp::ReadExclusive | BusOp::WriteBack)
    }

    /// `true` for transactions that invalidate remote copies.
    pub const fn invalidates_others(self) -> bool {
        matches!(self, BusOp::ReadExclusive | BusOp::Upgrade)
    }
}

/// What a local access requires of the memory system, given the current line
/// state.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LocalAction {
    /// Access completes in-cache, no bus operation, new state given.
    Hit(LineState),
    /// Line is valid but a write needs an invalidation-only [`BusOp::Upgrade`]
    /// before the store can retire (shared → private-dirty).
    HitNeedsUpgrade,
    /// Access misses; the given fill transaction must be issued.
    Miss(BusOp),
}

/// Computes the consequence of a local read or write against a line in
/// `state`. `state == Invalid` covers both "not present" and "invalidated".
pub fn local_access(state: LineState, is_write: bool) -> LocalAction {
    match (state, is_write) {
        (LineState::Invalid, false) => LocalAction::Miss(BusOp::Read),
        (LineState::Invalid, true) => LocalAction::Miss(BusOp::ReadExclusive),
        (s, false) => LocalAction::Hit(s),
        (LineState::Shared, true) => LocalAction::HitNeedsUpgrade,
        (LineState::PrivateClean, true) | (LineState::PrivateDirty, true) => {
            // Illinois: silent upgrade to dirty, no bus operation.
            LocalAction::Hit(LineState::PrivateDirty)
        }
    }
}

/// State a line fills into when transaction `op` completes, given whether any
/// other cache holds a copy at that moment (the Illinois "sharing" wire).
///
/// Exclusive fills land *clean*: an exclusive prefetch has not written yet;
/// the demand write that follows upgrades silently. `others_have_copy` is
/// irrelevant for exclusive fills because they invalidate every other copy.
///
/// # Panics
///
/// Panics if called with [`BusOp::Upgrade`] or [`BusOp::WriteBack`], which do
/// not fill lines.
pub fn fill_state(op: BusOp, others_have_copy: bool) -> LineState {
    match op {
        BusOp::Read => {
            if others_have_copy {
                LineState::Shared
            } else {
                LineState::PrivateClean
            }
        }
        BusOp::ReadExclusive => LineState::PrivateClean,
        BusOp::Upgrade | BusOp::WriteBack => {
            panic!("{op:?} does not fill a line")
        }
    }
}

/// Effect of snooping transaction `op` on a *remote* cache's valid copy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SnoopEffect {
    /// State the remote copy transitions to.
    pub new_state: LineState,
    /// The remote cache had the dirty copy and must supply it (memory is
    /// updated in the same transaction under Illinois; no separate
    /// write-back transaction is generated).
    pub supplies_data: bool,
    /// The remote copy is invalidated by this snoop.
    pub invalidated: bool,
}

/// Computes the effect of snooping `op` on a remote copy in `state`.
///
/// Returns `None` when `state` is invalid (nothing to do) or when the
/// transaction carries no coherence action ([`BusOp::WriteBack`]).
pub fn snoop(state: LineState, op: BusOp) -> Option<SnoopEffect> {
    if !state.is_valid() || op == BusOp::WriteBack {
        return None;
    }
    match op {
        BusOp::Read => Some(SnoopEffect {
            new_state: LineState::Shared,
            supplies_data: state.is_dirty(),
            invalidated: false,
        }),
        BusOp::ReadExclusive | BusOp::Upgrade => Some(SnoopEffect {
            new_state: LineState::Invalid,
            supplies_data: state.is_dirty(),
            invalidated: true,
        }),
        BusOp::WriteBack => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn read_miss_issues_bus_read() {
        assert_eq!(local_access(Invalid, false), LocalAction::Miss(BusOp::Read));
    }

    #[test]
    fn write_miss_issues_read_exclusive() {
        assert_eq!(local_access(Invalid, true), LocalAction::Miss(BusOp::ReadExclusive));
    }

    #[test]
    fn read_hits_preserve_state() {
        for s in [Shared, PrivateClean, PrivateDirty] {
            assert_eq!(local_access(s, false), LocalAction::Hit(s));
        }
    }

    #[test]
    fn write_hit_on_shared_needs_upgrade() {
        assert_eq!(local_access(Shared, true), LocalAction::HitNeedsUpgrade);
    }

    #[test]
    fn illinois_silent_upgrade_from_private_clean() {
        assert_eq!(local_access(PrivateClean, true), LocalAction::Hit(PrivateDirty));
        assert_eq!(local_access(PrivateDirty, true), LocalAction::Hit(PrivateDirty));
    }

    #[test]
    fn fill_states() {
        assert_eq!(fill_state(BusOp::Read, false), PrivateClean);
        assert_eq!(fill_state(BusOp::Read, true), Shared);
        assert_eq!(fill_state(BusOp::ReadExclusive, false), PrivateClean);
        assert_eq!(fill_state(BusOp::ReadExclusive, true), PrivateClean);
    }

    #[test]
    #[should_panic(expected = "does not fill")]
    fn upgrade_cannot_fill() {
        let _ = fill_state(BusOp::Upgrade, false);
    }

    #[test]
    fn snoop_read_downgrades_and_dirty_supplies() {
        let e = snoop(PrivateDirty, BusOp::Read).unwrap();
        assert_eq!(e.new_state, Shared);
        assert!(e.supplies_data);
        assert!(!e.invalidated);

        let e = snoop(PrivateClean, BusOp::Read).unwrap();
        assert_eq!(e.new_state, Shared);
        assert!(!e.supplies_data);

        let e = snoop(Shared, BusOp::Read).unwrap();
        assert_eq!(e.new_state, Shared);
        assert!(!e.supplies_data);
    }

    #[test]
    fn snoop_invalidating_ops() {
        for op in [BusOp::ReadExclusive, BusOp::Upgrade] {
            for s in [Shared, PrivateClean, PrivateDirty] {
                let e = snoop(s, op).unwrap();
                assert_eq!(e.new_state, Invalid);
                assert!(e.invalidated);
                assert_eq!(e.supplies_data, s == PrivateDirty);
            }
        }
    }

    #[test]
    fn snoop_nothing_to_do() {
        assert_eq!(snoop(Invalid, BusOp::Read), None);
        assert_eq!(snoop(Shared, BusOp::WriteBack), None);
        assert_eq!(snoop(PrivateDirty, BusOp::WriteBack), None);
    }

    #[test]
    fn bus_op_classification() {
        assert!(BusOp::Read.transfers_data());
        assert!(BusOp::ReadExclusive.transfers_data());
        assert!(BusOp::WriteBack.transfers_data());
        assert!(!BusOp::Upgrade.transfers_data());
        assert!(BusOp::ReadExclusive.invalidates_others());
        assert!(BusOp::Upgrade.invalidates_others());
        assert!(!BusOp::Read.invalidates_others());
        assert!(!BusOp::WriteBack.invalidates_others());
    }
}
