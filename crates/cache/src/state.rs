//! Coherence states of the Illinois protocol.

use std::fmt;

/// State of a cache line under the Illinois write-invalidate protocol
/// (Papamarcos & Patel, ISCA 1984).
///
/// Illinois is MESI with the feature the paper highlights (§3.3): a read miss
/// fills in the *private-clean* (exclusive) state when no other cache holds
/// the line, so later writes need no bus operation. Exclusive prefetches also
/// land in [`LineState::PrivateClean`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum LineState {
    /// No valid copy (or invalidated by a remote write).
    #[default]
    Invalid,
    /// Valid, clean, possibly also cached elsewhere.
    Shared,
    /// Valid, clean, guaranteed not cached elsewhere ("E" in MESI terms).
    PrivateClean,
    /// Valid, modified, guaranteed not cached elsewhere ("M"); memory stale.
    PrivateDirty,
}

impl LineState {
    /// `true` for any state other than [`LineState::Invalid`].
    pub const fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// `true` when a local write can proceed without a bus operation
    /// (private-clean upgrades silently to private-dirty under Illinois).
    pub const fn can_write_silently(self) -> bool {
        matches!(self, LineState::PrivateClean | LineState::PrivateDirty)
    }

    /// `true` when this cache must supply/flush data on a snoop hit
    /// (memory's copy is stale).
    pub const fn is_dirty(self) -> bool {
        matches!(self, LineState::PrivateDirty)
    }

    /// `true` when no other cache may hold the line.
    pub const fn is_exclusive(self) -> bool {
        matches!(self, LineState::PrivateClean | LineState::PrivateDirty)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Invalid => "I",
            LineState::Shared => "S",
            LineState::PrivateClean => "PC",
            LineState::PrivateDirty => "PD",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Shared.is_valid());
        assert!(LineState::PrivateClean.is_valid());
        assert!(LineState::PrivateDirty.is_valid());

        assert!(!LineState::Invalid.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
        assert!(LineState::PrivateClean.can_write_silently());
        assert!(LineState::PrivateDirty.can_write_silently());

        assert!(LineState::PrivateDirty.is_dirty());
        assert!(!LineState::PrivateClean.is_dirty());

        assert!(LineState::PrivateClean.is_exclusive());
        assert!(LineState::PrivateDirty.is_exclusive());
        assert!(!LineState::Shared.is_exclusive());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(LineState::Invalid.to_string(), "I");
        assert_eq!(LineState::PrivateDirty.to_string(), "PD");
    }
}
