//! Coherence states shared by every protocol the simulator models.

use std::fmt;

/// State of a cache line. The set is the union of the states used by the
/// supported protocols (see [`crate::protocol::Protocol`]); each protocol
/// uses a subset:
///
/// * **Illinois** (Papamarcos & Patel, ISCA 1984) — MESI with the feature
///   the paper highlights (§3.3): a read miss fills in the *private-clean*
///   (exclusive) state when no other cache holds the line, so later writes
///   need no bus operation. Uses `I/S/PC/PD`.
/// * **Firefly-style write-update** — same four states; reflective memory
///   keeps shared copies clean.
/// * **Dragon write-update** — adds [`LineState::SharedModified`] ("Sm"):
///   the one dirty sharer responsible for the eventual write-back.
/// * **MOESI** — adds [`LineState::Owned`] ("O"): dirty *and* shared, the
///   owner supplies data cache-to-cache without updating memory.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum LineState {
    /// No valid copy (or invalidated by a remote write).
    #[default]
    Invalid,
    /// Valid, clean, possibly also cached elsewhere.
    Shared,
    /// Valid, clean, guaranteed not cached elsewhere ("E" in MESI terms).
    PrivateClean,
    /// Valid, modified, guaranteed not cached elsewhere ("M"); memory stale.
    PrivateDirty,
    /// Valid, modified, shared (MOESI "O"): this cache supplies data on
    /// snoops and owes the write-back; memory stale; peers hold `Shared`.
    Owned,
    /// Valid, modified, shared (Dragon "Sm"): the last writer among the
    /// sharers, responsible for the write-back; memory stale.
    SharedModified,
}

impl LineState {
    /// `true` for any state other than [`LineState::Invalid`].
    pub const fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// `true` when a local write can proceed without a bus operation
    /// (private-clean upgrades silently to private-dirty under Illinois).
    pub const fn can_write_silently(self) -> bool {
        matches!(self, LineState::PrivateClean | LineState::PrivateDirty)
    }

    /// `true` when this cache must supply/flush data on a snoop hit
    /// (memory's copy is stale).
    pub const fn is_dirty(self) -> bool {
        matches!(
            self,
            LineState::PrivateDirty | LineState::Owned | LineState::SharedModified
        )
    }

    /// `true` when no other cache may hold the line.
    pub const fn is_exclusive(self) -> bool {
        matches!(self, LineState::PrivateClean | LineState::PrivateDirty)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Invalid => "I",
            LineState::Shared => "S",
            LineState::PrivateClean => "PC",
            LineState::PrivateDirty => "PD",
            LineState::Owned => "O",
            LineState::SharedModified => "SM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Shared.is_valid());
        assert!(LineState::PrivateClean.is_valid());
        assert!(LineState::PrivateDirty.is_valid());

        assert!(!LineState::Invalid.can_write_silently());
        assert!(!LineState::Shared.can_write_silently());
        assert!(LineState::PrivateClean.can_write_silently());
        assert!(LineState::PrivateDirty.can_write_silently());

        assert!(LineState::PrivateDirty.is_dirty());
        assert!(!LineState::PrivateClean.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(LineState::SharedModified.is_dirty());

        assert!(LineState::PrivateClean.is_exclusive());
        assert!(LineState::PrivateDirty.is_exclusive());
        assert!(!LineState::Shared.is_exclusive());
        assert!(!LineState::Owned.is_exclusive());
        assert!(!LineState::SharedModified.is_exclusive());

        assert!(!LineState::Owned.can_write_silently());
        assert!(!LineState::SharedModified.can_write_silently());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(LineState::Invalid.to_string(), "I");
        assert_eq!(LineState::PrivateDirty.to_string(), "PD");
        assert_eq!(LineState::Owned.to_string(), "O");
        assert_eq!(LineState::SharedModified.to_string(), "SM");
    }
}
