//! Set-associative cache array with LRU replacement.
//!
//! The array stores [`CacheLine`] metadata only. Coherence *decisions* are
//! made by [`crate::protocol`]; the array provides the mechanics: probing,
//! filling with victim selection, snoop-driven state changes.

use crate::geometry::CacheGeometry;
use crate::line::CacheLine;
use crate::protocol::{self, Protocol};
use crate::state::LineState;
use crate::victim::{VictimBuffer, VictimEntry};
use charlie_trace::LineAddr;

/// Result of probing the array for a line.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Probe {
    /// Valid copy present.
    Hit {
        /// Way within the set.
        way: u32,
        /// Current coherence state.
        state: LineState,
    },
    /// The frame still holds the tag but the line was invalidated: the
    /// paper's *invalidation miss* ("the tags match, but the state has been
    /// marked invalid").
    InvalidatedMatch {
        /// Way within the set.
        way: u32,
    },
    /// No frame in the set matches the tag: a *non-sharing* miss (first use,
    /// or the line was replaced).
    Miss,
}

impl Probe {
    /// `true` for [`Probe::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, Probe::Hit { .. })
    }
}

/// A valid line displaced by a fill, reported so the caller can issue a
/// write-back and record prefetch-waste statistics.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EvictedLine {
    /// Address of the displaced line.
    pub line: LineAddr,
    /// Its state at eviction (dirty ⇒ write-back required).
    pub state: LineState,
    /// The displaced line had been brought in by a prefetch and never used by
    /// a demand access.
    pub prefetched_unused: bool,
}

/// Classified result of a single-pass search of one set.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum SetFind {
    /// Matching tag, valid state.
    Hit(u32),
    /// Matching tag, but the frame was invalidated.
    InvalidMatch(u32),
    /// No frame holds the tag.
    Miss,
}

#[derive(Clone, Debug)]
struct CacheSet {
    ways: Vec<CacheLine>,
    /// Per-way last-use timestamps (larger = more recent). Replaces an
    /// explicit MRU-first index list: a touch is one store instead of a
    /// remove+insert shuffle, and victim selection folds into the same
    /// pass that searches the tags. Stamps are unique (monotonic clock,
    /// distinct initial values), so replacement order is exactly the old
    /// list order.
    stamp: Vec<u64>,
    /// Next timestamp to hand out.
    clock: u64,
}

impl CacheSet {
    fn new(associativity: u32) -> Self {
        let a = u64::from(associativity);
        CacheSet {
            ways: vec![CacheLine::new(); associativity as usize],
            // Way 0 starts most recent, way a-1 least recent — the initial
            // order of the old MRU list, which tests pin.
            stamp: (0..associativity).map(|i| a - 1 - u64::from(i)).collect(),
            clock: a,
        }
    }

    #[inline]
    fn touch(&mut self, way: u32) {
        self.stamp[way as usize] = self.clock;
        self.clock += 1;
    }

    /// One pass over the set: at most one frame can hold a given tag, so
    /// the first match wins and its validity classifies the result.
    #[inline]
    fn find(&self, tag: u64) -> SetFind {
        for (w, l) in self.ways.iter().enumerate() {
            if l.matches(tag) {
                return if l.state().is_valid() {
                    SetFind::Hit(w as u32)
                } else {
                    SetFind::InvalidMatch(w as u32)
                };
            }
        }
        SetFind::Miss
    }

    /// Victim selection in a single pass: reuse the matching-tag frame if
    /// any (refill after invalidation), else the least-recently-used
    /// invalid frame, else the least-recently-used frame overall.
    fn victim(&self, tag: u64) -> u32 {
        let mut oldest = 0usize;
        let mut oldest_invalid: Option<usize> = None;
        for (w, l) in self.ways.iter().enumerate() {
            if l.matches(tag) {
                return w as u32;
            }
            if self.stamp[w] < self.stamp[oldest] {
                oldest = w;
            }
            if !l.state().is_valid()
                && oldest_invalid.map_or(true, |o| self.stamp[w] < self.stamp[o])
            {
                oldest_invalid = Some(w);
            }
        }
        oldest_invalid.unwrap_or(oldest) as u32
    }
}

/// A single processor's cache: tags, Illinois states, LRU, and the per-line
/// bookkeeping the paper's miss taxonomy requires.
///
/// See the crate-level example for typical use.
#[derive(Clone, Debug)]
pub struct CacheArray {
    geom: CacheGeometry,
    sets: Vec<CacheSet>,
    victim: VictimBuffer,
}

impl CacheArray {
    /// Creates an empty cache with the given geometry (no victim buffer).
    pub fn new(geom: CacheGeometry) -> Self {
        CacheArray::with_victim(geom, 0)
    }

    /// Creates an empty cache backed by a fully-associative victim buffer of
    /// `victim_entries` lines (a small fully-associative Jouppi buffer; 0 disables it).
    pub fn with_victim(geom: CacheGeometry, victim_entries: usize) -> Self {
        let sets = (0..geom.num_sets()).map(|_| CacheSet::new(geom.associativity())).collect();
        CacheArray { geom, sets, victim: VictimBuffer::new(victim_entries) }
    }

    /// Capacity of the victim buffer (0 = disabled).
    pub fn victim_capacity(&self) -> usize {
        self.victim.capacity()
    }

    /// Whether the victim buffer holds a valid copy of `line`.
    pub fn probe_victim(&self, line: LineAddr) -> bool {
        self.victim.contains(line)
    }

    /// Swaps `line` back from the victim buffer into the main array,
    /// preserving its state and bookkeeping. Returns the line that leaves
    /// the hierarchy (the displaced line's castout), if any.
    ///
    /// Returns `None` without effect when the line is not buffered — check
    /// [`CacheArray::probe_victim`] first if the distinction matters (a
    /// castout also yields `None`, so use the probe, not this return value,
    /// to detect victim hits).
    pub fn recall_from_victim(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let entry = self.victim.take(line)?;
        self.install_frame(entry)
    }

    /// Installs a preserved frame into the main array, spilling any
    /// displaced valid line into the victim buffer. Returns the castout
    /// leaving the hierarchy, if any.
    fn install_frame(&mut self, entry: VictimEntry) -> Option<EvictedLine> {
        let line = entry.line;
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        let way = self.sets[set_idx].victim(tag);
        let displaced = {
            let frame = &self.sets[set_idx].ways[way as usize];
            if frame.state().is_valid() && !frame.matches(tag) {
                Some(VictimEntry {
                    line: self.geom.line_from_parts(frame.tag(), set_idx as u64),
                    frame: *frame,
                })
            } else {
                None
            }
        };
        self.sets[set_idx].ways[way as usize] = entry.frame;
        self.sets[set_idx].touch(way);
        let castout = displaced.and_then(|d| self.spill(d));
        castout.map(|c| EvictedLine {
            line: c.line,
            state: c.frame.state(),
            prefetched_unused: c.frame.filled_by_prefetch() && !c.frame.used_since_fill(),
        })
    }

    /// Routes an evicted valid line through the victim buffer; returns the
    /// entry that actually leaves the hierarchy.
    fn spill(&mut self, entry: VictimEntry) -> Option<VictimEntry> {
        if self.victim.capacity() == 0 {
            Some(entry)
        } else {
            self.victim.insert(entry)
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn set_of(&self, line: LineAddr) -> usize {
        self.geom.set_index(line) as usize
    }

    /// Probes for `line` without modifying any state (not even LRU).
    pub fn probe_line(&self, line: LineAddr) -> Probe {
        let tag = self.geom.tag(line);
        let set = &self.sets[self.set_of(line)];
        match set.find(tag) {
            SetFind::Miss => Probe::Miss,
            SetFind::Hit(way) => Probe::Hit { way, state: set.ways[way as usize].state() },
            SetFind::InvalidMatch(way) => Probe::InvalidatedMatch { way },
        }
    }

    /// Probes for the line containing byte address `addr`.
    pub fn probe(&self, addr: charlie_trace::Addr) -> Probe {
        self.probe_line(self.geom.line(addr))
    }

    /// Immutable view of a frame found by a probe.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range for the set of `line`.
    pub fn frame(&self, line: LineAddr, way: u32) -> &CacheLine {
        &self.sets[self.set_of(line)].ways[way as usize]
    }

    /// Mutable view of a frame found by a probe; also freshens LRU.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range for the set of `line`.
    pub fn frame_mut(&mut self, line: LineAddr, way: u32) -> &mut CacheLine {
        let set_idx = self.set_of(line);
        self.sets[set_idx].touch(way);
        &mut self.sets[set_idx].ways[way as usize]
    }

    /// Installs `line` in state `state`, evicting if necessary.
    ///
    /// Returns the displaced valid line, if any, so the caller can issue a
    /// write-back (dirty victim) and account for wasted prefetches.
    pub fn fill(&mut self, line: LineAddr, state: LineState, by_prefetch: bool) -> Option<EvictedLine> {
        // A stale buffered copy (e.g. the fill was issued before the victim
        // copy was noticed) must not linger.
        let _ = self.victim.take(line);
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        let way = self.sets[set_idx].victim(tag);
        let displaced = {
            let frame = &self.sets[set_idx].ways[way as usize];
            if frame.state().is_valid() && !frame.matches(tag) {
                Some(VictimEntry {
                    line: self.geom.line_from_parts(frame.tag(), set_idx as u64),
                    frame: *frame,
                })
            } else {
                None
            }
        };
        let set = &mut self.sets[set_idx];
        set.ways[way as usize].fill(tag, state, by_prefetch);
        set.touch(way);
        let castout = displaced.and_then(|d| self.spill(d));
        castout.map(|c| EvictedLine {
            line: c.line,
            state: c.frame.state(),
            prefetched_unused: c.frame.filled_by_prefetch() && !c.frame.used_since_fill(),
        })
    }

    /// Comprehensive invalidation snoop covering the main array *and* the
    /// victim buffer. Returns the pre-invalidation state and whether the
    /// killed copy was a never-used prefetch.
    pub fn snoop_invalidate(&mut self, line: LineAddr, word: u32) -> Option<(LineState, bool)> {
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        match self.sets[set_idx].find(tag) {
            SetFind::Hit(way) => {
                let frame = &mut self.sets[set_idx].ways[way as usize];
                let prev = frame.state();
                let unused = frame.filled_by_prefetch() && !frame.used_since_fill();
                frame.invalidate_by_remote_write(word);
                return Some((prev, unused));
            }
            SetFind::InvalidMatch(_) => return None,
            SetFind::Miss => {}
        }
        self.victim.take(line).map(|e| {
            (e.frame.state(), e.frame.filled_by_prefetch() && !e.frame.used_since_fill())
        })
    }

    /// Comprehensive remote-read downgrade snoop covering the main array and
    /// the victim buffer; returns the pre-snoop state of a valid copy. The
    /// target state is protocol-dependent (dirty suppliers keep ownership
    /// under Dragon/MOESI — see [`protocol::read_snoop_state`]).
    pub fn snoop_downgrade(&mut self, line: LineAddr, proto: Protocol) -> Option<LineState> {
        if let Some(prev) = self.downgrade_remote(line, proto) {
            return Some(prev);
        }
        self.victim.downgrade(line, proto)
    }

    /// Applies an update-broadcast snoop to a peer copy of `line` (main
    /// array and victim buffer): the copy absorbs the word and, under
    /// Dragon, an `Sm` peer cedes ownership to the writer. Returns the
    /// pre-snoop state of a valid copy.
    pub fn snoop_update(&mut self, line: LineAddr, proto: Protocol) -> Option<LineState> {
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        if let SetFind::Hit(way) = self.sets[set_idx].find(tag) {
            let frame = &mut self.sets[set_idx].ways[way as usize];
            let prev = frame.state();
            frame.downgrade(protocol::update_snoop_state(proto, prev));
            return Some(prev);
        }
        self.victim.update(line, proto)
    }

    /// Applies a remote invalidation (read-exclusive or upgrade snoop) for
    /// `line`, where the remote write targets word `word`.
    ///
    /// Returns the frame's pre-invalidation state if a valid copy was
    /// present (so the caller can tell whether data had to be supplied and
    /// whether a prefetched-unused line was killed), or `None` otherwise.
    pub fn invalidate_remote(&mut self, line: LineAddr, word: u32) -> Option<LineState> {
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let SetFind::Hit(way) = set.find(tag) else { return None };
        let frame = &mut set.ways[way as usize];
        let prev = frame.state();
        frame.invalidate_by_remote_write(word);
        Some(prev)
    }

    /// Applies a remote-read downgrade snoop for `line` (valid copy drops to
    /// the protocol's read-snoop state — `Shared`, or `Sm`/`O` for a dirty
    /// supplier under Dragon/MOESI). Returns the pre-snoop state if a valid
    /// copy was present.
    pub fn downgrade_remote(&mut self, line: LineAddr, proto: Protocol) -> Option<LineState> {
        let tag = self.geom.tag(line);
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        let SetFind::Hit(way) = set.find(tag) else { return None };
        let frame = &mut set.ways[way as usize];
        let prev = frame.state();
        frame.downgrade(protocol::read_snoop_state(proto, prev));
        Some(prev)
    }

    /// Current state of `line` if a valid copy is resident in the main
    /// array or the victim buffer.
    pub fn state_of(&self, line: LineAddr) -> Option<LineState> {
        match self.probe_line(line) {
            Probe::Hit { state, .. } => Some(state),
            _ => self.victim.iter().find(|(l, _)| *l == line).map(|(_, s)| s),
        }
    }

    /// Iterates over all valid resident lines (main array, then victim
    /// buffer) as `(LineAddr, LineState)`.
    pub fn iter_valid(&self) -> impl Iterator<Item = (LineAddr, LineState)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(move |(set_idx, set)| {
                set.ways.iter().filter(|l| l.state().is_valid()).map(move |l| {
                    (self.geom.line_from_parts(l.tag(), set_idx as u64), l.state())
                })
            })
            .chain(self.victim.iter())
    }

    /// Number of valid resident lines (including the victim buffer).
    pub fn num_valid(&self) -> usize {
        self.sets.iter().map(|s| s.ways.iter().filter(|l| l.state().is_valid()).count()).sum::<usize>()
            + self.victim.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::Addr;

    fn dm_cache() -> CacheArray {
        CacheArray::new(CacheGeometry::paper_default())
    }

    #[test]
    fn empty_cache_misses() {
        let c = dm_cache();
        assert_eq!(c.probe(Addr::new(0x1234)), Probe::Miss);
        assert_eq!(c.num_valid(), 0);
    }

    #[test]
    fn fill_hit_roundtrip() {
        let mut c = dm_cache();
        let line = Addr::new(0x1234).line(32);
        assert_eq!(c.fill(line, LineState::Shared, false), None);
        match c.probe(Addr::new(0x1220)) {
            Probe::Hit { state, .. } => assert_eq!(state, LineState::Shared),
            p => panic!("expected hit, got {p:?}"),
        }
        assert_eq!(c.num_valid(), 1);
        assert_eq!(c.state_of(line), Some(LineState::Shared));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_cache();
        let a = Addr::new(0x0000).line(32);
        let b = Addr::new(0x8000).line(32); // same set, different tag
        c.fill(a, LineState::PrivateDirty, false);
        let evicted = c.fill(b, LineState::Shared, false).expect("conflict eviction");
        assert_eq!(evicted.line, a);
        assert_eq!(evicted.state, LineState::PrivateDirty);
        assert!(!evicted.prefetched_unused);
        assert_eq!(c.probe_line(a), Probe::Miss);
        assert!(c.probe_line(b).is_hit());
    }

    #[test]
    fn eviction_reports_unused_prefetch() {
        let mut c = dm_cache();
        let a = Addr::new(0x0000).line(32);
        let b = Addr::new(0x8000).line(32);
        c.fill(a, LineState::PrivateClean, true); // prefetched, never used
        let evicted = c.fill(b, LineState::Shared, false).unwrap();
        assert!(evicted.prefetched_unused);
    }

    #[test]
    fn invalidation_match_probe() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::Shared, false);
        assert_eq!(c.invalidate_remote(line, 3), Some(LineState::Shared));
        match c.probe_line(line) {
            Probe::InvalidatedMatch { way } => {
                assert_eq!(c.frame(line, way).inval_word(), Some(3));
            }
            p => panic!("expected invalidated match, got {p:?}"),
        }
        // Second invalidation is a no-op.
        assert_eq!(c.invalidate_remote(line, 4), None);
    }

    #[test]
    fn refill_after_invalidation_reuses_frame() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::Shared, false);
        c.invalidate_remote(line, 0);
        assert_eq!(c.fill(line, LineState::Shared, false), None);
        assert!(c.probe_line(line).is_hit());
    }

    #[test]
    fn downgrade_remote_shares() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::PrivateDirty, false);
        assert_eq!(
            c.downgrade_remote(line, Protocol::WriteInvalidate),
            Some(LineState::PrivateDirty)
        );
        assert_eq!(c.state_of(line), Some(LineState::Shared));
        // Missing line: no-op.
        assert_eq!(c.downgrade_remote(Addr::new(0x9000).line(32), Protocol::WriteInvalidate), None);
    }

    #[test]
    fn downgrade_remote_keeps_ownership_under_moesi_and_dragon() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::PrivateDirty, false);
        assert_eq!(c.downgrade_remote(line, Protocol::Moesi), Some(LineState::PrivateDirty));
        assert_eq!(c.state_of(line), Some(LineState::Owned));

        let mut c = dm_cache();
        c.fill(line, LineState::PrivateDirty, false);
        assert_eq!(c.downgrade_remote(line, Protocol::Dragon), Some(LineState::PrivateDirty));
        assert_eq!(c.state_of(line), Some(LineState::SharedModified));
    }

    #[test]
    fn snoop_update_transfers_dragon_ownership() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::Shared, false);
        // Simulate an earlier local write that left this peer as Sm.
        if let Probe::Hit { way, .. } = c.probe_line(line) {
            c.frame_mut(line, way).downgrade(LineState::SharedModified);
        }
        assert_eq!(c.snoop_update(line, Protocol::Dragon), Some(LineState::SharedModified));
        assert_eq!(c.state_of(line), Some(LineState::Shared));
        // Firefly peers keep their shared copies untouched.
        assert_eq!(c.snoop_update(line, Protocol::WriteUpdate), Some(LineState::Shared));
        assert_eq!(c.state_of(line), Some(LineState::Shared));
        // Missing line: no-op.
        assert_eq!(c.snoop_update(Addr::new(0x9000).line(32), Protocol::Dragon), None);
    }

    #[test]
    fn lru_in_two_way_set() {
        let geom = CacheGeometry::new(64 * 32 * 2, 32, 2).unwrap(); // 64 sets, 2-way
        let mut c = CacheArray::new(geom);
        // Three lines mapping to set 0.
        let stride = 64 * 32; // set stride
        let a = Addr::new(0).line(32);
        let b = Addr::new(stride).line(32);
        let d = Addr::new(2 * stride).line(32);
        c.fill(a, LineState::Shared, false);
        c.fill(b, LineState::Shared, false);
        // Touch `a` so `b` becomes LRU.
        if let Probe::Hit { way, .. } = c.probe_line(a) {
            c.frame_mut(a, way).record_access(0, LineState::Shared);
        } else {
            panic!("a resident");
        }
        let evicted = c.fill(d, LineState::Shared, false).unwrap();
        assert_eq!(evicted.line, b, "LRU way must be evicted");
        assert!(c.probe_line(a).is_hit());
        assert!(c.probe_line(d).is_hit());
    }

    #[test]
    fn invalid_frame_preferred_over_eviction() {
        let geom = CacheGeometry::new(64 * 32 * 2, 32, 2).unwrap();
        let mut c = CacheArray::new(geom);
        let stride = 64 * 32;
        let a = Addr::new(0).line(32);
        let b = Addr::new(stride).line(32);
        let d = Addr::new(2 * stride).line(32);
        c.fill(a, LineState::Shared, false);
        c.fill(b, LineState::Shared, false);
        c.invalidate_remote(a, 0); // a's frame is now invalid (ghost)
        // Filling d should reuse a's frame, not evict b.
        assert_eq!(c.fill(d, LineState::Shared, false), None);
        assert!(c.probe_line(b).is_hit());
        assert!(c.probe_line(d).is_hit());
        assert_eq!(c.probe_line(a), Probe::Miss, "ghost frame overwritten");
    }

    #[test]
    fn iter_valid_lists_resident_lines() {
        let mut c = dm_cache();
        let l1 = Addr::new(0x40).line(32);
        let l2 = Addr::new(0x80).line(32);
        c.fill(l1, LineState::Shared, false);
        c.fill(l2, LineState::PrivateDirty, false);
        let mut lines: Vec<_> = c.iter_valid().collect();
        lines.sort();
        assert_eq!(lines, vec![(l1, LineState::Shared), (l2, LineState::PrivateDirty)]);
    }

    #[test]
    fn refill_same_tag_is_not_eviction() {
        let mut c = dm_cache();
        let line = Addr::new(0x40).line(32);
        c.fill(line, LineState::Shared, false);
        assert_eq!(c.fill(line, LineState::PrivateClean, false), None);
        assert_eq!(c.state_of(line), Some(LineState::PrivateClean));
    }
}
