//! Cache geometry: size, block size, associativity, and the derived address
//! decomposition.

use charlie_trace::{Addr, LineAddr};
use std::error::Error;
use std::fmt;

/// Shape of a cache: total size, block (line) size, and associativity.
///
/// The paper's configuration is 32 KB, 32-byte blocks, direct-mapped:
/// `CacheGeometry::new(32 * 1024, 32, 1)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    size_bytes: u64,
    block_bytes: u64,
    associativity: u32,
    num_sets: u64,
}

/// Error constructing a [`CacheGeometry`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum GeometryError {
    /// Size, block size, or the implied set count is not a power of two, or a
    /// parameter is zero.
    NotPowerOfTwo,
    /// `size < block * associativity` (fewer than one set).
    TooSmall,
    /// Block size implies more than 64 words per line (unsupported by the
    /// per-word access masks).
    BlockTooLarge,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo => {
                f.write_str("cache size, block size and set count must be nonzero powers of two")
            }
            GeometryError::TooSmall => {
                f.write_str("cache must hold at least one set (size >= block * associativity)")
            }
            GeometryError::BlockTooLarge => {
                f.write_str("block size must not exceed 256 bytes (64 words)")
            }
        }
    }
}

impl Error for GeometryError {}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero or not a power of
    /// two, if the implied number of sets is not a power of two, if the cache
    /// cannot hold one full set, or if the block exceeds 64 words.
    pub fn new(size_bytes: u64, block_bytes: u64, associativity: u32) -> Result<Self, GeometryError> {
        if size_bytes == 0
            || block_bytes == 0
            || associativity == 0
            || !size_bytes.is_power_of_two()
            || !block_bytes.is_power_of_two()
        {
            return Err(GeometryError::NotPowerOfTwo);
        }
        if block_bytes > 256 {
            return Err(GeometryError::BlockTooLarge);
        }
        let frame_bytes = block_bytes * u64::from(associativity);
        if size_bytes < frame_bytes {
            return Err(GeometryError::TooSmall);
        }
        let num_sets = size_bytes / frame_bytes;
        if !num_sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo);
        }
        Ok(CacheGeometry { size_bytes, block_bytes, associativity, num_sets })
    }

    /// The paper's cache: 32 KB, 32-byte blocks, direct-mapped.
    pub fn paper_default() -> Self {
        CacheGeometry::new(32 * 1024, 32, 1).expect("paper geometry is valid")
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Number of 4-byte words per block.
    pub fn words_per_block(&self) -> u32 {
        (self.block_bytes / 4) as u32
    }

    /// The line address containing `addr`.
    pub fn line(&self, addr: Addr) -> LineAddr {
        addr.line(self.block_bytes)
    }

    /// The set index of a line.
    pub fn set_index(&self, line: LineAddr) -> u64 {
        line.raw() & (self.num_sets - 1)
    }

    /// The tag of a line (the part of the line address above the set index).
    pub fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.num_sets.trailing_zeros()
    }

    /// Reassembles a line address from a tag and a set index (inverse of
    /// [`CacheGeometry::tag`]/[`CacheGeometry::set_index`]).
    pub fn line_from_parts(&self, tag: u64, set: u64) -> LineAddr {
        LineAddr::from_raw((tag << self.num_sets.trailing_zeros()) | set)
    }

    /// The word index of `addr` within its block.
    pub fn word_index(&self, addr: Addr) -> u32 {
        addr.word_in_line(self.block_bytes)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-byte blocks, {}-way",
            self.size_bytes / 1024,
            self.block_bytes,
            self.associativity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let g = CacheGeometry::paper_default();
        assert_eq!(g.size_bytes(), 32 * 1024);
        assert_eq!(g.block_bytes(), 32);
        assert_eq!(g.associativity(), 1);
        assert_eq!(g.num_sets(), 1024);
        assert_eq!(g.words_per_block(), 8);
        assert_eq!(g.to_string(), "32 KB, 32-byte blocks, 1-way");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(CacheGeometry::new(0, 32, 1), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(CacheGeometry::new(1024, 0, 1), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(CacheGeometry::new(1024, 32, 0), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(CacheGeometry::new(1000, 32, 1), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(CacheGeometry::new(1024, 48, 1), Err(GeometryError::NotPowerOfTwo));
        assert_eq!(CacheGeometry::new(32, 64, 1), Err(GeometryError::TooSmall));
        assert_eq!(CacheGeometry::new(4096, 512, 1), Err(GeometryError::BlockTooLarge));
        // 16-way 1024B cache with 32B lines: 2 sets, fine.
        assert!(CacheGeometry::new(1024, 32, 16).is_ok());
    }

    #[test]
    fn fully_associative_is_one_set() {
        let g = CacheGeometry::new(16 * 32, 32, 16).unwrap();
        assert_eq!(g.num_sets(), 1);
        let l1 = Addr::new(0x0).line(32);
        let l2 = Addr::new(0x12340).line(32);
        assert_eq!(g.set_index(l1), 0);
        assert_eq!(g.set_index(l2), 0);
        assert_ne!(g.tag(l1), g.tag(l2));
    }

    #[test]
    fn tag_set_round_trip() {
        let g = CacheGeometry::paper_default();
        for raw in [0u64, 0x1234, 0xdead_beef, 0xffff_ffff] {
            let line = Addr::new(raw).line(32);
            let rebuilt = g.line_from_parts(g.tag(line), g.set_index(line));
            assert_eq!(rebuilt, line);
        }
    }

    #[test]
    fn conflicting_addresses_map_to_same_set() {
        let g = CacheGeometry::paper_default();
        // Addresses 32 KB apart conflict in a direct-mapped 32 KB cache.
        let a = Addr::new(0x0000);
        let b = Addr::new(0x8000);
        assert_eq!(g.set_index(g.line(a)), g.set_index(g.line(b)));
        assert_ne!(g.tag(g.line(a)), g.tag(g.line(b)));
    }
}
