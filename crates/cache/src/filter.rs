//! Filter caches: simple uniprocessor caches used off-line.
//!
//! The paper's prefetch-insertion pipeline runs each processor's address
//! stream through a *filter cache* of the same configuration as the real
//! cache to predict non-sharing misses (§3.1), and PWS runs write-shared
//! references through a 16-line fully-associative filter to approximate
//! temporal locality (§4.1). [`FilterCache`] serves both.

use crate::array::{CacheArray, Probe};
use crate::geometry::CacheGeometry;
use crate::state::LineState;
use charlie_trace::Addr;

/// A uniprocessor cache that answers only "would this access hit?", filling
/// on every miss.
///
/// # Example
///
/// ```
/// use charlie_cache::{CacheGeometry, FilterCache};
/// use charlie_trace::Addr;
///
/// let mut f = FilterCache::new(CacheGeometry::paper_default());
/// assert!(!f.access(Addr::new(0x100))); // cold miss
/// assert!(f.access(Addr::new(0x104))); // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct FilterCache {
    array: CacheArray,
    accesses: u64,
    misses: u64,
}

impl FilterCache {
    /// Creates an empty filter with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        FilterCache { array: CacheArray::new(geom), accesses: 0, misses: 0 }
    }

    /// The paper's PWS filter: 16 lines, fully associative, 32-byte blocks.
    pub fn pws_default() -> Self {
        let geom = CacheGeometry::new(16 * 32, 32, 16).expect("valid PWS filter geometry");
        FilterCache::new(geom)
    }

    /// Simulates one access; returns `true` on a hit. Misses allocate.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.accesses += 1;
        let line = self.array.geometry().line(addr);
        match self.array.probe_line(line) {
            Probe::Hit { way, .. } => {
                // Freshen LRU.
                let word = self.array.geometry().word_index(addr);
                self.array.frame_mut(line, way).record_access(word, LineState::PrivateClean);
                true
            }
            Probe::InvalidatedMatch { .. } | Probe::Miss => {
                self.misses += 1;
                self.array.fill(line, LineState::PrivateClean, false);
                false
            }
        }
    }

    /// Accesses simulated so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`; 0 when no accesses were simulated.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The filter's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        self.array.geometry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_hot() {
        let mut f = FilterCache::new(CacheGeometry::paper_default());
        assert!(!f.access(Addr::new(0x0)));
        assert!(f.access(Addr::new(0x4)));
        assert!(f.access(Addr::new(0x1c)));
        assert!(!f.access(Addr::new(0x20))); // next line
        assert_eq!(f.accesses(), 4);
        assert_eq!(f.misses(), 2);
        assert!((f.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflict_in_direct_mapped_filter() {
        let mut f = FilterCache::new(CacheGeometry::paper_default());
        assert!(!f.access(Addr::new(0x0000)));
        assert!(!f.access(Addr::new(0x8000))); // conflicts, evicts
        assert!(!f.access(Addr::new(0x0000))); // conflict miss
    }

    #[test]
    fn pws_filter_is_16_line_fully_associative() {
        let f = FilterCache::pws_default();
        assert_eq!(f.geometry().num_sets(), 1);
        assert_eq!(f.geometry().associativity(), 16);
        assert_eq!(f.geometry().block_bytes(), 32);
    }

    #[test]
    fn pws_filter_lru_depth() {
        let mut f = FilterCache::pws_default();
        // Fill 16 distinct lines.
        for i in 0..16u64 {
            assert!(!f.access(Addr::new(i * 32)));
        }
        // All 16 hit.
        for i in 0..16u64 {
            assert!(f.access(Addr::new(i * 32)), "line {i} should still be resident");
        }
        // A 17th line evicts the LRU, which is line 0 (touched earliest in
        // the second loop). Line 15 stays resident.
        assert!(!f.access(Addr::new(16 * 32)));
        assert!(f.access(Addr::new(15 * 32)));
        assert!(!f.access(Addr::new(0)));
    }

    #[test]
    fn empty_filter_miss_rate_zero() {
        let f = FilterCache::pws_default();
        assert_eq!(f.miss_rate(), 0.0);
    }
}
