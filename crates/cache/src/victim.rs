//! A small fully-associative victim buffer (Jouppi, ISCA 1990).
//!
//! The paper's §4.3 notes that the conflicts prefetching introduces "would
//! likely be reduced by a victim cache or a set-associative cache". The
//! buffer holds the last few *valid* lines evicted from the main array; a
//! miss that hits the buffer swaps the line back at small cost instead of
//! paying a memory fetch.
//!
//! Coherence simplification (documented, the feature is off by default):
//! a remote invalidation *drops* the victim entry rather than leaving an
//! invalid ghost, so a subsequent local miss on that line classifies as
//! non-sharing. The main array's invalidation-miss taxonomy is unaffected.

use crate::line::CacheLine;
use crate::protocol::{self, Protocol};
use crate::state::LineState;
use charlie_trace::LineAddr;

/// One preserved evicted line.
#[derive(Copy, Clone, Debug)]
pub(crate) struct VictimEntry {
    pub line: LineAddr,
    pub frame: CacheLine,
}

/// Fully-associative LRU buffer of evicted lines.
#[derive(Clone, Debug, Default)]
pub(crate) struct VictimBuffer {
    capacity: usize,
    /// Most recently inserted last.
    entries: Vec<VictimEntry>,
}

impl VictimBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        VictimBuffer { capacity, entries: Vec::with_capacity(capacity) }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an evicted line, returning the LRU castout if full (with a
    /// zero-capacity buffer the inserted entry itself bounces straight out).
    pub(crate) fn insert(&mut self, entry: VictimEntry) -> Option<VictimEntry> {
        debug_assert!(entry.frame.state().is_valid(), "victims are valid lines");
        debug_assert!(
            !self.entries.iter().any(|e| e.line == entry.line),
            "line cannot be in the victim buffer twice"
        );
        if self.capacity == 0 {
            return Some(entry);
        }
        let castout =
            if self.entries.len() == self.capacity { Some(self.entries.remove(0)) } else { None };
        self.entries.push(entry);
        castout
    }

    /// Removes and returns the entry for `line`, if present.
    pub(crate) fn take(&mut self, line: LineAddr) -> Option<VictimEntry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.remove(pos))
    }

    /// Whether a valid copy of `line` is buffered.
    pub(crate) fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Applies a remote-read downgrade in place (to the protocol's
    /// read-snoop state); returns the prior state.
    pub(crate) fn downgrade(&mut self, line: LineAddr, proto: Protocol) -> Option<LineState> {
        let entry = self.entries.iter_mut().find(|e| e.line == line)?;
        let prev = entry.frame.state();
        entry.frame.downgrade(protocol::read_snoop_state(proto, prev));
        Some(prev)
    }

    /// Applies an update-broadcast snoop in place; returns the prior state.
    pub(crate) fn update(&mut self, line: LineAddr, proto: Protocol) -> Option<LineState> {
        let entry = self.entries.iter_mut().find(|e| e.line == line)?;
        let prev = entry.frame.state();
        entry.frame.downgrade(protocol::update_snoop_state(proto, prev));
        Some(prev)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (LineAddr, LineState)> + '_ {
        self.entries.iter().map(|e| (e.line, e.frame.state()))
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64, state: LineState) -> VictimEntry {
        let mut frame = CacheLine::new();
        frame.fill(n, state, false);
        VictimEntry { line: LineAddr::from_raw(n), frame }
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut v = VictimBuffer::new(2);
        assert!(v.insert(entry(1, LineState::Shared)).is_none());
        assert!(v.contains(LineAddr::from_raw(1)));
        let e = v.take(LineAddr::from_raw(1)).unwrap();
        assert_eq!(e.frame.state(), LineState::Shared);
        assert!(!v.contains(LineAddr::from_raw(1)));
    }

    #[test]
    fn lru_castout_when_full() {
        let mut v = VictimBuffer::new(2);
        v.insert(entry(1, LineState::Shared));
        v.insert(entry(2, LineState::PrivateDirty));
        let castout = v.insert(entry(3, LineState::Shared)).expect("buffer full");
        assert_eq!(castout.line, LineAddr::from_raw(1), "oldest entry cast out");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn take_acts_as_invalidation() {
        let mut v = VictimBuffer::new(2);
        v.insert(entry(1, LineState::PrivateDirty));
        assert_eq!(
            v.take(LineAddr::from_raw(1)).map(|e| e.frame.state()),
            Some(LineState::PrivateDirty)
        );
        assert!(!v.contains(LineAddr::from_raw(1)));
        assert!(v.take(LineAddr::from_raw(1)).is_none());
    }

    #[test]
    fn downgrade_in_place() {
        let mut v = VictimBuffer::new(2);
        v.insert(entry(1, LineState::PrivateDirty));
        assert_eq!(
            v.downgrade(LineAddr::from_raw(1), Protocol::WriteInvalidate),
            Some(LineState::PrivateDirty)
        );
        let (line, state) = v.iter().next().unwrap();
        assert_eq!(line, LineAddr::from_raw(1));
        assert_eq!(state, LineState::Shared);
    }

    #[test]
    fn downgrade_keeps_moesi_ownership() {
        let mut v = VictimBuffer::new(2);
        v.insert(entry(1, LineState::PrivateDirty));
        assert_eq!(
            v.downgrade(LineAddr::from_raw(1), Protocol::Moesi),
            Some(LineState::PrivateDirty)
        );
        assert_eq!(v.iter().next().unwrap().1, LineState::Owned);
    }

    #[test]
    fn zero_capacity_casts_out_immediately() {
        let mut v = VictimBuffer::new(0);
        let e = entry(1, LineState::Shared);
        let castout = v.insert(e).expect("bounces straight out");
        assert_eq!(castout.line, LineAddr::from_raw(1));
        assert_eq!(v.len(), 0);
    }
}
