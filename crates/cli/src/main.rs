//! `charlie` — the command-line front end. All logic lives in the library
//! (see [`charlie_cli::run_cli`]) so it can be unit-tested.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    std::process::exit(charlie_cli::run_cli(argv, &mut out));
}
