//! The CLI subcommands.

use crate::args::{Args, ArgsError};
use crate::json::{report_json, JsonObject};
use charlie::bus::BusConfig;
use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, HwPrefetchConfig, Strategy};
use charlie::sim::{
    simulate_observed, Observability, Protocol, SampleConfig, SimConfig, TraceCategories,
    TraceEmitter,
};
use charlie::chaos::{self, FaultKind, FaultPlan};
use charlie::timeline::{saturation_summary, timeline_csv, timeline_json};
use charlie::trace::{io as trace_io, Trace};
use charlie::workloads::{generate, Layout, Workload, WorkloadConfig};
use charlie::{
    experiments as exhibits, Experiment, Lab, ObserveSpec, RunConfig, SamplingConfig, SamplingMode,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

fn parse_workload(name: &str) -> Result<Workload, ArgsError> {
    Workload::EXTENDED
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| ArgsError(format!("unknown workload {name:?}")))
}

fn parse_strategy(name: &str) -> Result<Strategy, ArgsError> {
    Strategy::EXTENDED
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgsError(format!(
                "unknown strategy {name:?} (np, pref, excl, lpd, pws, excl-rmw)"
            ))
        })
}

fn parse_layout(name: &str) -> Result<Layout, ArgsError> {
    match name.to_ascii_lowercase().as_str() {
        "interleaved" | "original" => Ok(Layout::Interleaved),
        "padded" | "restructured" => Ok(Layout::Padded),
        other => Err(ArgsError(format!("unknown layout {other:?} (interleaved, padded)"))),
    }
}

fn workload_config(args: &Args) -> Result<(WorkloadConfig, Workload), ArgsError> {
    let workload = parse_workload(args.get("workload").unwrap_or("mp3d"))?;
    let cfg = WorkloadConfig {
        procs: args.get_or("procs", 8usize)?,
        refs_per_proc: args.get_or("refs", 160_000usize)?,
        seed: args.get_or("seed", 0xC0FFEEu64)?,
        layout: parse_layout(args.get("layout").unwrap_or("interleaved"))?,
    };
    Ok((cfg, workload))
}

/// Machine knobs shared by `run` and `run-trace`.
struct MachineOpts {
    transfer: u64,
    warmup: u64,
    victim: usize,
    protocol: Protocol,
    hw_prefetch: HwPrefetchConfig,
    check: bool,
}

impl MachineOpts {
    fn from_args(args: &Args) -> Result<MachineOpts, ArgsError> {
        let spec = args.get("protocol").unwrap_or("invalidate");
        let protocol = Protocol::parse(&spec.to_ascii_lowercase()).ok_or_else(|| {
            ArgsError(format!("unknown protocol {spec:?} ({})", Protocol::CHOICES))
        })?;
        let hw_prefetch = match args.get("hw-prefetch") {
            None => HwPrefetchConfig::OFF,
            Some(spec) => HwPrefetchConfig::parse(spec)
                .map_err(|e| ArgsError(format!("--hw-prefetch: {e}")))?,
        };
        Ok(MachineOpts {
            transfer: args.get_or("transfer", 8u64)?,
            warmup: args.get_or("warmup", 0u64)?,
            victim: args.get_or("victim", 0usize)?,
            protocol,
            hw_prefetch,
            check: args.switch("check"),
        })
    }
}

/// Applies the strategy and builds the machine config shared by `run`,
/// `run-trace` and `profile`.
fn prepare_cell(
    raw: &Trace,
    strategy: Strategy,
    opts: &MachineOpts,
) -> Result<(Trace, SimConfig), ArgsError> {
    let transfer = opts.transfer;
    if !(1..=100).contains(&transfer) {
        return Err(ArgsError(format!("--transfer {transfer} outside 1..=100")));
    }
    let prepared = apply(strategy, raw, CacheGeometry::paper_default());
    let sim_cfg = SimConfig {
        warmup_accesses: opts.warmup,
        victim_entries: opts.victim,
        protocol: opts.protocol,
        hw_prefetch: opts.hw_prefetch,
        check_invariants: opts.check,
        ..SimConfig::paper(raw.num_procs(), transfer)
    };
    Ok((prepared, sim_cfg))
}

/// `--trace-cats` (default: everything).
fn trace_cats_from_args(args: &Args) -> Result<TraceCategories, ArgsError> {
    match args.get("trace-cats") {
        None => Ok(TraceCategories::all()),
        Some(s) => TraceCategories::parse(s).map_err(ArgsError),
    }
}

/// `--trace-out FILE`: a structured JSONL event trace sink. The file goes
/// through a [`chaos::ChaosWriter`] (tag `trace`) so durability tests can
/// fault it.
fn tracer_from_args(args: &Args) -> Result<Option<TraceEmitter>, ArgsError> {
    let Some(path) = args.get("trace-out") else { return Ok(None) };
    let cats = trace_cats_from_args(args)?;
    let file = File::create(path).map_err(|e| ArgsError(format!("creating {path}: {e}")))?;
    let sink = chaos::ChaosWriter::new(BufWriter::new(file), "trace");
    Ok(Some(TraceEmitter::new(Box::new(sink), cats)))
}

/// Observability for a single-cell command: `--sample-interval N` and
/// `--trace-out FILE --trace-cats LIST`.
fn observability_from_args(args: &Args) -> Result<Observability, ArgsError> {
    let sample = match args.get("sample-interval") {
        None => None,
        Some(v) => {
            let interval: u64 = v
                .parse()
                .map_err(|_| ArgsError(format!("--sample-interval: cannot parse {v:?}")))?;
            Some(SampleConfig::every(interval))
        }
    };
    Ok(Observability { sample, tracer: tracer_from_args(args)? })
}

fn simulate_prepared<W: Write>(
    label: &str,
    raw: &Trace,
    strategy: Strategy,
    opts: &MachineOpts,
    obs: Observability,
    json: bool,
    out: &mut W,
) -> Result<(), ArgsError> {
    let (prepared, sim_cfg) = prepare_cell(raw, strategy, opts)?;
    // The timeline is dropped here on purpose: `run` output must be
    // byte-identical with observation on or off (use `profile` to see it).
    let (report, _timeline) =
        simulate_observed(&sim_cfg, &prepared, obs).map_err(|e| ArgsError(e.to_string()))?;
    let inserted = prepared.total_prefetches() as u64;
    if json {
        let _ = writeln!(out, "{}", report_json(label, &report, inserted));
    } else {
        let _ = writeln!(out, "{label}: {report}");
    }
    Ok(())
}

/// Builds a [`SamplingConfig`] from `--sample-mode` plus optional knob
/// overrides; `None` when `--sample-mode` is absent (the exact path).
pub(crate) fn sampling_from_args(args: &Args) -> Result<Option<SamplingConfig>, ArgsError> {
    let Some(mode_name) = args.get("sample-mode") else { return Ok(None) };
    let mode = SamplingMode::parse(&mode_name.to_ascii_lowercase()).ok_or_else(|| {
        ArgsError(format!("unknown --sample-mode {mode_name:?} (smarts, simpoint)"))
    })?;
    let defaults = match mode {
        SamplingMode::Smarts => SamplingConfig::smarts(),
        SamplingMode::Simpoint => SamplingConfig::simpoint(),
    };
    let scfg = SamplingConfig {
        mode,
        window_accesses: args.get_or("sample-window", defaults.window_accesses)?,
        period: args.get_or("sample-period", defaults.period)?,
        warmup: args.get_or("sample-warm", defaults.warmup)?,
        max_k: args.get_or("sample-k", defaults.max_k)?,
        seed: args.get_or("sample-seed", defaults.seed)?,
        cold: args.get_or("sample-cold", defaults.cold)?,
    };
    scfg.validate().map_err(ArgsError)?;
    Ok(Some(scfg))
}

/// One line summarizing a sampled estimate for text output.
fn sampled_line(s: &charlie::SampledSummary) -> String {
    let clusters = if s.mode == SamplingMode::Simpoint {
        format!(", {} clusters", s.clusters)
    } else {
        String::new()
    };
    format!(
        "sampled ({}): est {} ±{} cycles (99% CI, ±{:.1}%), bus util {:.3}; \
         {} of {} windows detailed{clusters}, {} events",
        s.mode,
        s.est_cycles,
        s.ci_cycles,
        100.0 * s.relative_ci(),
        s.bus_utilization(),
        s.detailed_windows,
        s.total_windows,
        s.events
    )
}

/// Appends the sampled-estimate fields to a JSON object.
fn sampled_json(o: &mut JsonObject, s: &charlie::SampledSummary) {
    let mut inner = JsonObject::new();
    inner
        .string("mode", s.mode.name())
        .num("total_windows", s.total_windows)
        .num("detailed_windows", s.detailed_windows)
        .num("clusters", s.clusters)
        .num("total_accesses", s.total_accesses)
        .num("est_cycles", s.est_cycles)
        .num("ci_cycles", s.ci_cycles)
        .num("est_bus_busy", s.est_bus_busy)
        .num("ci_bus_busy", s.ci_bus_busy)
        .float("bus_utilization", s.bus_utilization())
        .num("events", s.events);
    o.raw("sampled", inner.finish());
}

/// `charlie run`.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "workload", "strategy", "transfer", "procs", "refs", "seed", "layout", "warmup",
        "victim", "protocol", "hw-prefetch", "sample-interval", "trace-out", "trace-cats",
        "sample-mode", "sample-window", "sample-period", "sample-warm", "sample-k",
        "sample-seed", "sample-cold",
    ])?;
    let (cfg, workload) = workload_config(args)?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("pref"))?;
    let opts = MachineOpts::from_args(args)?;
    let label = format!("{workload}/{strategy} @{}cy", opts.transfer);
    if let Some(scfg) = sampling_from_args(args)? {
        // The sampled path owns the windowing machinery, so the
        // measurement-warm-up and timeline hooks are mutually exclusive
        // with it.
        if opts.warmup != 0 {
            return Err(ArgsError("--warmup cannot be combined with --sample-mode".into()));
        }
        if args.get("sample-interval").is_some() || args.get("trace-out").is_some() {
            return Err(ArgsError(
                "observability flags (--sample-interval/--trace-out) cannot be \
                 combined with --sample-mode"
                    .into(),
            ));
        }
        let raw = generate(workload, &cfg);
        let (prepared, sim_cfg) = prepare_cell(&raw, strategy, &opts)?;
        let (report, sampled) = charlie::run_sampled_on_prepared(&sim_cfg, &prepared, &scfg)
            .map_err(|e| ArgsError(e.to_string()))?;
        let inserted = prepared.total_prefetches() as u64;
        if args.switch("json") {
            let mut o = JsonObject::new();
            o.raw("report", report_json(&label, &report, inserted));
            sampled_json(&mut o, &sampled);
            let _ = writeln!(out, "{}", o.finish());
        } else {
            let _ = writeln!(out, "{label}: {report}");
            let _ = writeln!(out, "{}", sampled_line(&sampled));
        }
        return Ok(());
    }
    let obs = observability_from_args(args)?;
    let raw = generate(workload, &cfg);
    simulate_prepared(&label, &raw, strategy, &opts, obs, args.switch("json"), out)
}

/// `charlie profile`: one cell run with the interval sampler on, rendered as
/// a per-window timeline (text summary, `--csv` rows, or a `--json` document
/// that embeds the exact `run --json` report) plus the saturation-onset
/// summary — the first window whose bus utilization crosses 0.9.
pub fn profile<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "workload", "strategy", "transfer", "procs", "refs", "seed", "layout", "warmup",
        "victim", "protocol", "hw-prefetch", "sample-interval", "trace-out", "trace-cats",
    ])?;
    if args.positional.len() > 1 {
        return Err(ArgsError(format!(
            "profile takes at most one positional workload, got {:?}",
            args.positional
        )));
    }
    let workload =
        parse_workload(args.positional.first().map(String::as_str).or(args.get("workload")).unwrap_or("mp3d"))?;
    let cfg = WorkloadConfig {
        procs: args.get_or("procs", 8usize)?,
        refs_per_proc: args.get_or("refs", 160_000usize)?,
        seed: args.get_or("seed", 0xC0FFEEu64)?,
        layout: parse_layout(args.get("layout").unwrap_or("interleaved"))?,
    };
    let strategy = parse_strategy(args.get("strategy").unwrap_or("pref"))?;
    let opts = MachineOpts::from_args(args)?;
    let interval = args.get_or("sample-interval", 10_000u64)?;
    if interval == 0 {
        return Err(ArgsError("--sample-interval must be at least 1 cycle".into()));
    }
    let obs = Observability {
        sample: Some(SampleConfig::every(interval)),
        tracer: tracer_from_args(args)?,
    };
    let raw = generate(workload, &cfg);
    let (prepared, sim_cfg) = prepare_cell(&raw, strategy, &opts)?;
    let (report, timeline) =
        simulate_observed(&sim_cfg, &prepared, obs).map_err(|e| ArgsError(e.to_string()))?;
    let timeline = timeline
        .ok_or_else(|| ArgsError("profile produced no timeline despite sampling".into()))?;
    let inserted = prepared.total_prefetches() as u64;
    let label = format!("{workload}/{strategy} @{}cy", opts.transfer);
    let sat = saturation_summary(&timeline);

    if args.switch("json") {
        let mut o = JsonObject::new();
        o.raw("report", report_json(&label, &report, inserted))
            .num("sample_interval", interval);
        match sat.onset {
            Some(cycle) => o.num("saturation_onset", cycle),
            None => o.raw("saturation_onset", "null".to_owned()),
        };
        o.num("saturated_windows", sat.saturated_windows as u64)
            .num("windows", sat.windows as u64)
            .float("peak_bus_utilization", sat.peak_utilization)
            .raw("timeline", timeline_json(&timeline));
        let _ = writeln!(out, "{}", o.finish());
    } else if args.switch("csv") {
        let _ = write!(out, "{}", timeline_csv(&timeline));
    } else {
        let _ = writeln!(out, "{label}: {report}");
        let _ = writeln!(
            out,
            "timeline: {} windows of {interval} cycles; peak bus utilization {:.3}",
            sat.windows, sat.peak_utilization
        );
        match sat.onset {
            Some(cycle) => {
                let _ = writeln!(
                    out,
                    "bus saturation (>{:.0}% busy) from cycle {cycle}, measured at a \
                     {interval}-cycle sample interval; {} of {} windows saturated",
                    charlie::timeline::SATURATION_THRESHOLD * 100.0,
                    sat.saturated_windows,
                    sat.windows
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "bus never saturated (>{:.0}% busy) at a {interval}-cycle sample \
                     interval; use --csv or --json for the full timeline",
                    charlie::timeline::SATURATION_THRESHOLD * 100.0
                );
            }
        }
    }
    Ok(())
}

/// Parses `--jobs` (0 = one worker per core, the default). An unparsable
/// value is not fatal: parallelism is an optimization, so we warn once on
/// stderr and fall back to serial rather than kill a long campaign over it.
fn parse_jobs(args: &Args) -> usize {
    match args.get("jobs") {
        None => 0,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: invalid --jobs {v:?}; falling back to serial (1 worker)");
            1
        }),
    }
}

/// Prints a batch's failure summary to stderr and converts it into a
/// nonzero exit, leaving `out` untouched — healthy cells were simulated and
/// journaled, but a partial exhibit must not masquerade as a complete one.
fn bail_on_failures(report: &charlie::BatchReport) -> Result<(), ArgsError> {
    match report.failure_summary() {
        None => Ok(()),
        Some(summary) => {
            eprintln!("{summary}");
            Err(ArgsError(format!(
                "{} experiment cell(s) failed; see stderr for details",
                report.failures.len()
            )))
        }
    }
}

/// `charlie sweep`.
pub fn sweep<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "workload", "procs", "refs", "seed", "layout", "jobs", "resume", "sample-interval",
        "trace-out", "trace-cats", "protocol",
    ])?;
    let (wcfg, workload) = workload_config(args)?;
    let jobs = parse_jobs(args);
    let proto_spec = args.get("protocol").unwrap_or("invalidate");
    let protocol = Protocol::parse(&proto_spec.to_ascii_lowercase()).ok_or_else(|| {
        ArgsError(format!("unknown protocol {proto_spec:?} ({})", Protocol::CHOICES))
    })?;
    let mut lab = Lab::new(RunConfig {
        procs: wcfg.procs,
        refs_per_proc: wcfg.refs_per_proc,
        seed: wcfg.seed,
        protocol,
        ..RunConfig::default()
    });
    let mut observe = ObserveSpec::default();
    if let Some(v) = args.get("sample-interval") {
        let interval: u64 = v
            .parse()
            .map_err(|_| ArgsError(format!("--sample-interval: cannot parse {v:?}")))?;
        observe.sample_interval = Some(interval);
    }
    observe.trace_cats = trace_cats_from_args(args)?;
    if let Some(dir) = args.get("trace-out") {
        // For a sweep, --trace-out names a directory: one JSONL file per
        // grid cell, named after the experiment.
        std::fs::create_dir_all(dir)
            .map_err(|e| ArgsError(format!("creating trace dir {dir}: {e}")))?;
        observe.trace_dir = Some(PathBuf::from(dir));
    }
    lab.set_observe(observe);
    // Warm the memo in parallel; the serial loops below then read it.
    let grid: Vec<Experiment> = Strategy::ALL
        .into_iter()
        .flat_map(|s| {
            BusConfig::PAPER_SWEEP.into_iter().map(move |lat| {
                let exp = Experiment::paper(workload, s, lat);
                if wcfg.layout == Layout::Padded {
                    exp.restructured()
                } else {
                    exp
                }
            })
        })
        .collect();
    let report = if let Some(path) = args.get("resume") {
        // Checkpointed sweep: completed cells from an earlier (possibly
        // killed) invocation are restored, the rest run and journal as they
        // finish. A resumed sweep renders byte-identical output. The journal
        // header pins the campaign shape, so resuming with a different
        // workload/layout/procs/refs/seed refuses instead of mixing grids.
        let mut config = format!(
            "sweep/{}/{:?}/p{}/r{}/s{:#x}",
            workload.name(),
            wcfg.layout,
            wcfg.procs,
            wcfg.refs_per_proc,
            wcfg.seed
        );
        // Appended only for non-default protocols so Illinois journals stay
        // byte-identical to campaigns written before the knob existed; a
        // resume across a protocol change refuses with a config mismatch
        // naming both keys.
        if protocol != Protocol::WriteInvalidate {
            config.push_str("/proto=");
            config.push_str(protocol.key_name());
        }
        let opts = charlie::checkpoint::JournalOptions { config: Some(config), sync: false };
        let (mut journal, restored) = charlie::checkpoint::Journal::open_with(Path::new(path), opts)
            .map_err(|e| ArgsError(format!("--resume {path}: {e}")))?;
        for summary in restored {
            lab.restore(summary);
        }
        lab.run_batch_checkpointed(&grid, jobs, &mut journal)
    } else {
        lab.run_batch(&grid, jobs)
    };
    bail_on_failures(&report)?;
    if args.switch("json") {
        let mut rows = Vec::new();
        for s in Strategy::PREFETCHING {
            for lat in BusConfig::PAPER_SWEEP {
                let mut exp = Experiment::paper(workload, s, lat);
                if wcfg.layout == Layout::Padded {
                    exp = exp.restructured();
                }
                let rel = lab.relative_time(exp);
                rows.push(format!(
                    "{{\"strategy\":\"{}\",\"transfer\":{lat},\"relative_time\":{rel:.6}}}",
                    s.name()
                ));
            }
        }
        let _ = writeln!(out, "[{}]", rows.join(","));
    } else {
        let table = exhibits::figure2_for(&mut lab, workload);
        let _ = writeln!(out, "{table}");
    }
    Ok(())
}

/// `charlie export-trace`.
pub fn export_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&["workload", "procs", "refs", "seed", "layout", "strategy", "out"])?;
    let (cfg, workload) = workload_config(args)?;
    let path = args.get("out").ok_or_else(|| ArgsError("--out FILE is required".into()))?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("np"))?;
    let raw = generate(workload, &cfg);
    let trace = apply(strategy, &raw, CacheGeometry::paper_default());
    // Atomic write (temp + rename, chaos tag `trace`): a killed or faulted
    // export leaves either the old file or the new one, never a torn trace.
    let mut file = chaos::AtomicFile::create(path, "trace")
        .map_err(|e| ArgsError(format!("creating {path}: {e}")))?;
    trace_io::write_trace(&trace, &mut file)
        .map_err(|e| ArgsError(format!("writing {path}: {e}")))?;
    file.commit().map_err(|e| ArgsError(format!("writing {path}: {e}")))?;
    let _ = writeln!(
        out,
        "wrote {path}: {} procs, {} accesses, {} prefetches",
        trace.num_procs(),
        trace.total_accesses(),
        trace.total_prefetches()
    );
    Ok(())
}

/// `charlie run-trace`.
pub fn run_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "file", "transfer", "strategy", "warmup", "victim", "protocol", "hw-prefetch",
    ])?;
    let path = args.get("file").ok_or_else(|| ArgsError("--file FILE is required".into()))?;
    let file = File::open(path).map_err(|e| ArgsError(format!("opening {path}: {e}")))?;
    // Route parse failures through RunError, the same classification the
    // batch engine records, so CLI and batch reports read identically.
    let trace = trace_io::read_trace(BufReader::new(file))
        .map_err(|e| ArgsError(format!("{path}: {}", charlie::RunError::from(e))))?;
    trace.validate().map_err(|e| ArgsError(format!("{path}: invalid trace: {e}")))?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("np"))?;
    let opts = MachineOpts::from_args(args)?;
    if strategy != Strategy::NoPrefetch && trace.total_prefetches() > 0 {
        return Err(ArgsError(
            "trace already contains prefetches; run it with --strategy np".into(),
        ));
    }
    let label = format!("{path}/{strategy} @{}cy", opts.transfer);
    simulate_prepared(&label, &trace, strategy, &opts, Observability::default(), args.switch("json"), out)
}

/// `charlie experiments`.
pub fn experiments<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&["jobs"])?;
    let jobs = parse_jobs(args);
    let mut lab = Lab::new(RunConfig::default());
    let names: Vec<String> = if args.positional.is_empty() {
        vec!["all".to_owned()]
    } else {
        args.positional.clone()
    };
    // Batch every requested exhibit's cells through the parallel engine up
    // front; the exhibit functions below then run from the memo. Bail before
    // rendering if any cell failed — exhibits would re-simulate (and panic
    // on) the missing cells.
    let grid: Vec<Experiment> =
        names.iter().flat_map(|name| exhibits::grid_for(name)).collect();
    let report = lab.run_batch(&grid, jobs);
    bail_on_failures(&report)?;
    let csv = args.switch("csv");
    let emit = |out: &mut W, table: &charlie::Table| {
        if csv {
            let _ = write!(out, "{}", table.to_csv());
        } else {
            let _ = writeln!(out, "{table}");
        }
    };
    for name in names {
        match name.as_str() {
            "table1" => emit(out, &exhibits::table1(&mut lab)),
            "figure1" => emit(out, &exhibits::figure1(&mut lab)),
            "table2" => emit(out, &exhibits::table2(&mut lab)),
            "figure2" => {
                for panel in exhibits::figure2(&mut lab) {
                    emit(out, &panel);
                }
            }
            "figure3" => emit(out, &exhibits::figure3(&mut lab)),
            "table3" => emit(out, &exhibits::table3(&mut lab)),
            "table4" => emit(out, &exhibits::table4(&mut lab)),
            "table5" => emit(out, &exhibits::table5(&mut lab)),
            "proc-util" => emit(out, &exhibits::processor_utilization(&mut lab)),
            // Post-paper exhibit; deliberately not part of "all", whose
            // output is pinned byte-for-byte to the paper grid.
            "hw-prefetch" => {
                for table in exhibits::hw_prefetch_head_to_head(&mut lab) {
                    emit(out, &table);
                }
            }
            "protocols" => {
                for table in exhibits::protocol_head_to_head(&mut lab) {
                    emit(out, &table);
                }
            }
            "all" => {
                emit(out, &exhibits::table1(&mut lab));
                emit(out, &exhibits::figure1(&mut lab));
                emit(out, &exhibits::table2(&mut lab));
                for panel in exhibits::figure2(&mut lab) {
                    emit(out, &panel);
                }
                emit(out, &exhibits::figure3(&mut lab));
                emit(out, &exhibits::table3(&mut lab));
                emit(out, &exhibits::table4(&mut lab));
                emit(out, &exhibits::table5(&mut lab));
                emit(out, &exhibits::processor_utilization(&mut lab));
            }
            other => return Err(ArgsError(format!("unknown exhibit {other:?}"))),
        }
    }
    Ok(())
}

/// `charlie bench`: measures the representative grid slice and emits a
/// `BENCH_charlie.json`-shaped snapshot; with `--baseline`, additionally
/// enforces the events/sec regression gate against the checked-in numbers.
pub fn bench<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&["label", "out", "baseline", "refs", "procs", "seed"])?;
    let quick = args.switch("quick");
    let sampled = args.switch("sampled");
    let mut slice_cfg =
        if quick { charlie::bench::SliceConfig::quick() } else { charlie::bench::SliceConfig::full() };
    slice_cfg.refs_per_proc = args.get_or("refs", slice_cfg.refs_per_proc)?;
    slice_cfg.procs = args.get_or("procs", slice_cfg.procs)?;
    slice_cfg.seed = args.get_or("seed", slice_cfg.seed)?;
    let default_label =
        if sampled { "sampled" } else if quick { "quick" } else { "full" };
    let label = args.get("label").unwrap_or(default_label);

    if sampled && args.get("baseline").is_some() {
        // The sampled slice runs ~period-fold fewer events than exact, so
        // the exact-throughput regression gate is meaningless for it.
        return Err(ArgsError(
            "--baseline compares exact-slice throughput; it cannot gate --sampled".into(),
        ));
    }
    let snapshot = if sampled {
        charlie::bench::run_sampled_slice(label, &slice_cfg, &SamplingConfig::smarts())
    } else {
        charlie::bench::run_slice(label, &slice_cfg)
    };
    let _ = writeln!(out, "{}", snapshot.summary());

    if let Some(path) = args.get("out") {
        let rendered = charlie::bench::render_file(&[&snapshot]);
        // Atomic write (chaos tag `bench`): the snapshot file is either the
        // previous complete one or the new complete one, never a torn mix.
        chaos::write_atomic(path, rendered.as_bytes(), "bench")
            .map_err(|e| ArgsError(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "snapshot written to {path}");
    }

    if let Some(path) = args.get("baseline") {
        // Quick runs gate against the checked-in quick baseline; full runs
        // against the post-optimization full numbers.
        let section = if quick { "quick_baseline" } else { "after" };
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| ArgsError(format!("reading {path}: {e}")))?;
        let reference = charlie::bench::extract_run_number(&baseline, section, "events_per_sec")
            .ok_or_else(|| {
                ArgsError(format!("no runs.{section}.events_per_sec in {path}"))
            })?;
        let measured = snapshot.events_per_sec;
        // A zero/negative/NaN baseline would make every run "pass" the
        // gate (or divide by zero); that is a broken baseline file, not a
        // passing benchmark — refuse it loudly.
        if !reference.is_finite() || reference <= 0.0 {
            return Err(ArgsError(format!(
                "baseline runs.{section}.events_per_sec in {path} is {reference}, not a \
                 positive throughput; regenerate the baseline with `charlie bench --out {path}`"
            )));
        }
        let ratio = measured / reference;
        let _ = writeln!(
            out,
            "baseline {section}: {:.2} M events/s; measured {:.2} M events/s ({:.0}% of baseline)",
            reference / 1e6,
            measured / 1e6,
            ratio * 100.0,
        );
        if ratio < 0.8 {
            return Err(ArgsError(format!(
                "events/sec regressed more than 20% vs {path} ({:.2}M < 0.8 x {:.2}M)",
                measured / 1e6,
                reference / 1e6,
            )));
        }
    }
    Ok(())
}

/// `charlie calibrate`: runs an experiment grid sampled *and* exact,
/// reporting per-cell execution-time and bus-utilization error, wall-clock
/// and event-count speedups, and CI coverage. With `--tolerance`, exits
/// nonzero when any cell's error exceeds it — the CI gate for the sampled
/// path.
pub fn calibrate<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "grid", "refs", "procs", "seed", "jobs", "tolerance", "sample-mode", "sample-window",
        "sample-period", "sample-warm", "sample-k", "sample-seed", "sample-cold",
    ])?;
    let scfg = sampling_from_args(args)?.unwrap_or_else(SamplingConfig::smarts);
    let grid = match args.get("grid").unwrap_or("quick") {
        "quick" => charlie::quick_grid(),
        "paper" | "full" => exhibits::full_grid(),
        other => {
            return Err(ArgsError(format!("unknown --grid {other:?} (quick, paper)")))
        }
    };
    let cfg = RunConfig {
        procs: args.get_or("procs", 8usize)?,
        refs_per_proc: args.get_or("refs", 160_000usize)?,
        seed: args.get_or("seed", 0xC0FFEEu64)?,
        ..RunConfig::default()
    };
    let jobs = Lab::resolve_jobs(parse_jobs(args));
    let cal = charlie::calibrate(&cfg, &scfg, &grid, jobs)
        .map_err(|e| ArgsError(e.to_string()))?;

    let tolerance: Option<f64> = match args.get("tolerance") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| ArgsError(format!("--tolerance: cannot parse {v:?} as percent")))?
                / 100.0,
        ),
    };

    if args.switch("json") {
        let mut o = JsonObject::new();
        o.string("mode", scfg.mode.name())
            .num("window_accesses", scfg.window_accesses)
            .num("cells", cal.cells.len() as u64)
            .float("max_cycles_error", cal.max_cycles_error())
            .float("mean_cycles_error", cal.mean_cycles_error())
            .float("max_util_error", cal.max_util_error())
            .float("mean_speedup", cal.mean_speedup())
            .float("mean_event_speedup", cal.mean_event_speedup())
            .float("ci_coverage", cal.ci_coverage());
        let cells: Vec<String> = cal
            .cells
            .iter()
            .map(|c| {
                let mut co = JsonObject::new();
                co.string("experiment", &c.experiment.to_string())
                    .num("exact_cycles", c.exact_cycles)
                    .num("est_cycles", c.sampled.est_cycles)
                    .num("ci_cycles", c.sampled.ci_cycles)
                    .float("cycles_error", c.cycles_error())
                    .float("util_error", c.util_error())
                    .float("speedup", c.speedup())
                    .float("event_speedup", c.event_speedup())
                    .raw("ci_contains_exact", c.ci_contains_cycles().to_string());
                co.finish()
            })
            .collect();
        o.raw("cells_detail", format!("[{}]", cells.join(",")));
        let _ = writeln!(out, "{}", o.finish());
    } else {
        let _ = writeln!(
            out,
            "calibrate: {} ({}-access windows) over {} cells, {} refs/proc x {} procs",
            scfg.mode,
            scfg.window_accesses,
            cal.cells.len(),
            cfg.refs_per_proc,
            cfg.procs
        );
        let _ = writeln!(
            out,
            "{:<26} {:>14} {:>14} {:>7} {:>7} {:>8} {:>8}  {}",
            "cell", "exact cycles", "est cycles", "terr%", "uerr%", "speedup", "ev-spdup", "CI"
        );
        for c in &cal.cells {
            let _ = writeln!(
                out,
                "{:<26} {:>14} {:>14} {:>6.2} {:>6.2} {:>7.1}x {:>7.1}x  {}",
                c.experiment.to_string(),
                c.exact_cycles,
                c.sampled.est_cycles,
                100.0 * c.cycles_error(),
                100.0 * c.util_error(),
                c.speedup(),
                c.event_speedup(),
                if c.ci_contains_cycles() { "ok" } else { "MISS" }
            );
        }
        let _ = writeln!(
            out,
            "summary: max time error {:.2}% (mean {:.2}%), max util error {:.2}%; \
             geomean speedup {:.1}x wall, {:.1}x events; CI coverage {:.0}%",
            100.0 * cal.max_cycles_error(),
            100.0 * cal.mean_cycles_error(),
            100.0 * cal.max_util_error(),
            cal.mean_speedup(),
            cal.mean_event_speedup(),
            100.0 * cal.ci_coverage()
        );
    }

    if let Some(tol) = tolerance {
        let worst = cal.max_cycles_error().max(cal.max_util_error());
        if worst > tol {
            return Err(ArgsError(format!(
                "sampling error {:.2}% exceeds tolerance {:.2}%",
                100.0 * worst,
                100.0 * tol
            )));
        }
    }
    Ok(())
}

/// Runs `charlie sweep` with the given extra tokens, capturing its stdout.
fn captured_sweep(base: &[String], resume: Option<&Path>) -> Result<String, ArgsError> {
    let mut tokens = base.to_vec();
    if let Some(path) = resume {
        tokens.push("--resume".to_owned());
        tokens.push(path.display().to_string());
    }
    let parsed = Args::parse(tokens)?;
    let mut buf = Vec::new();
    sweep(&parsed, &mut buf)?;
    String::from_utf8(buf).map_err(|e| ArgsError(format!("sweep output not UTF-8: {e}")))
}

/// `charlie chaos`: the durability exercise. Runs a small sweep as the
/// reference, then proves three properties against it:
///
/// 1. **Crash-point matrix** — for a set of byte offsets (line boundaries
///    and mid-line cuts of the journal), a run resumed from a journal
///    truncated at that offset renders output byte-identical to the
///    uninterrupted reference.
/// 2. **Live fault plans** — with each [`FaultKind`] (plus a seeded mixed
///    plan) armed against the journal writer, the sweep still completes
///    with reference-identical output, and a later unarmed resume heals the
///    damaged journal.
/// 3. **Atomic artifacts** — a `bench --out` snapshot under a crash fault
///    either fully appears or not at all; never a torn file.
pub fn chaos<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "workload", "procs", "refs", "seed", "layout", "jobs", "points", "fault-seed", "dir",
    ])?;
    let points = args.get_or("points", 8usize)?;
    if points == 0 {
        return Err(ArgsError("--points must be at least 1".into()));
    }
    let fault_seed = args.get_or("fault-seed", 0xC4A0_5EEDu64)?;
    if chaos::is_armed() {
        return Err(ArgsError(
            "a fault plan is already ambient (CHARLIE_CHAOS?); chaos manages its own plans"
                .into(),
        ));
    }
    let scratch = match args.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("charlie-chaos-{}", std::process::id())),
    };
    std::fs::create_dir_all(&scratch)
        .map_err(|e| ArgsError(format!("creating scratch dir {}: {e}", scratch.display())))?;

    let mut base: Vec<String> = vec!["sweep".to_owned(), "--json".to_owned()];
    for key in ["workload", "procs", "refs", "seed", "layout", "jobs"] {
        if let Some(v) = args.get(key) {
            base.push(format!("--{key}"));
            base.push(v.to_owned());
        }
    }

    let mut checks = 0usize;
    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        checks += 1;
        if !ok {
            failures += 1;
            eprintln!("chaos: FAIL: {what}");
        }
    };

    // Phase 1: hooks compiled in but disabled — journaling must be invisible.
    let reference = captured_sweep(&base, None)?;
    let ckpt = scratch.join("chaos.ckpt");
    let journaled = captured_sweep(&base, Some(&ckpt))?;
    check(journaled == reference, "journaled sweep output differs from reference");
    let journal_bytes = std::fs::read(&ckpt)
        .map_err(|e| ArgsError(format!("reading journal {}: {e}", ckpt.display())))?;
    let resumed = captured_sweep(&base, Some(&ckpt))?;
    check(resumed == reference, "fully-resumed sweep output differs from reference");
    let after = std::fs::read(&ckpt)
        .map_err(|e| ArgsError(format!("reading journal {}: {e}", ckpt.display())))?;
    check(after == journal_bytes, "fully-resumed sweep rewrote the journal");
    let _ = writeln!(
        out,
        "chaos: reference sweep captured; journal is {} bytes, journaling invisible",
        journal_bytes.len()
    );

    // Phase 2: crash-point matrix over journal prefixes. Line boundaries
    // model a clean kill between appends; evenly spaced interior offsets
    // land mid-line (torn tails, split CRC frames, a cut header).
    let len = journal_bytes.len();
    let mut offsets: Vec<usize> = (1..=points).map(|i| i * len.saturating_sub(1) / (points + 1)).collect();
    let boundaries: Vec<usize> = journal_bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let step = (boundaries.len() / points).max(1);
    offsets.extend(boundaries.iter().step_by(step).copied());
    offsets.retain(|&k| k > 0 && k < len);
    offsets.sort_unstable();
    offsets.dedup();
    let mut matrix_ok = 0usize;
    for &k in &offsets {
        let path = scratch.join(format!("crash-{k}.ckpt"));
        std::fs::write(&path, &journal_bytes[..k])
            .map_err(|e| ArgsError(format!("writing truncated journal {}: {e}", path.display())))?;
        let output = captured_sweep(&base, Some(&path))?;
        if output == reference {
            matrix_ok += 1;
        }
        check(output == reference, &format!("resume from journal cut at byte {k} diverged"));
    }
    let _ = writeln!(
        out,
        "chaos: crash-point matrix: {matrix_ok}/{} resumed grids byte-identical",
        offsets.len()
    );

    // Phase 3: live faults against the journal writer. The sweep must
    // finish with reference output (persistence degrades, results do not),
    // and an unarmed resume must heal whatever the fault left behind.
    let mut plans: Vec<(String, FaultPlan)> = FaultKind::ALL
        .into_iter()
        .map(|kind| {
            let mut plan = FaultPlan::new();
            plan.push("journal", kind, (len / 3) as u64);
            plan.push("journal", kind, (2 * len / 3) as u64);
            (kind.name().to_owned(), plan)
        })
        .collect();
    plans.push((
        "seeded-mix".to_owned(),
        FaultPlan::seeded(fault_seed, "journal", len as u64, points),
    ));
    let mut live_ok = 0usize;
    let total_plans = plans.len();
    for (name, plan) in plans {
        let path = scratch.join(format!("fault-{name}.ckpt"));
        chaos::arm(plan);
        let armed = captured_sweep(&base, Some(&path));
        chaos::disarm();
        let armed = armed?;
        let healed = captured_sweep(&base, Some(&path))?;
        if armed == reference && healed == reference {
            live_ok += 1;
        }
        check(armed == reference, &format!("sweep under {name} faults diverged"));
        check(healed == reference, &format!("resume after {name} faults diverged"));
    }
    let _ = writeln!(out, "chaos: live fault plans: {live_ok}/{total_plans} recovered byte-identical");

    // Phase 4: atomic artifacts. A bench snapshot that crashes mid-write
    // must not appear at its final path at all.
    let bench_path = scratch.join("bench.json");
    let bench_tokens: Vec<String> = [
        "bench", "--quick", "--refs", "300", "--procs", "2", "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([bench_path.display().to_string()])
    .collect();
    let mut crash_plan = FaultPlan::new();
    crash_plan.push("bench", FaultKind::Crash, 64);
    chaos::arm(crash_plan);
    let crashed = bench(&Args::parse(bench_tokens.clone())?, &mut Vec::new());
    chaos::disarm();
    check(crashed.is_err(), "bench --out under a crash fault must report the failure");
    check(!bench_path.exists(), "crashed bench snapshot must not appear at its final path");
    bench(&Args::parse(bench_tokens)?, &mut Vec::new())?;
    let snapshot = std::fs::read_to_string(&bench_path)
        .map_err(|e| ArgsError(format!("reading bench snapshot {}: {e}", bench_path.display())))?;
    check(
        snapshot.trim_start().starts_with('{') && snapshot.trim_end().ends_with('}'),
        "healthy bench snapshot must be complete JSON",
    );
    let _ = writeln!(out, "chaos: atomic bench snapshot: crash leaves no partial file");

    drop(check);
    if failures == 0 {
        std::fs::remove_dir_all(&scratch).ok();
        let _ = writeln!(out, "chaos: OK ({checks} checks)");
        Ok(())
    } else {
        let _ = writeln!(
            out,
            "chaos: {failures} of {checks} checks FAILED (scratch kept at {})",
            scratch.display()
        );
        Err(ArgsError(format!("{failures} durability check(s) failed")))
    }
}
