//! Minimal JSON emission for simulation reports (no external dependencies).

use charlie::SimReport;
use std::fmt::Write as _;

/// A tiny JSON object builder; values are written pre-formatted.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds an unsigned-integer field.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a float field (6 significant decimals, `null` for non-finite).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = if value.is_finite() { format!("{value:.6}") } else { "null".to_owned() };
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Adds a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push((key.to_owned(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds a nested raw JSON value.
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_owned(), value));
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a [`SimReport`] (plus run context) as a JSON object.
pub fn report_json(label: &str, report: &SimReport, prefetches_inserted: u64) -> String {
    let mut o = JsonObject::new();
    o.string("experiment", label)
        .num("cycles", report.cycles)
        .num("measured_from", report.measured_from)
        .num("demand_accesses", report.demand_accesses())
        .num("reads", report.reads)
        .num("writes", report.writes)
        .float("total_miss_rate", report.total_miss_rate())
        .float("cpu_miss_rate", report.cpu_miss_rate())
        .float("adjusted_cpu_miss_rate", report.adjusted_cpu_miss_rate())
        .float("invalidation_miss_rate", report.invalidation_miss_rate())
        .float("false_sharing_miss_rate", report.false_sharing_miss_rate())
        .float("non_sharing_miss_rate", report.non_sharing_miss_rate())
        .float("bus_utilization", report.bus_utilization())
        .float("processor_utilization", report.avg_processor_utilization())
        .num("prefetches_inserted", prefetches_inserted);

    let m = report.miss;
    let mut miss = JsonObject::new();
    miss.num("non_sharing_not_prefetched", m.non_sharing_not_prefetched)
        .num("non_sharing_prefetched", m.non_sharing_prefetched)
        .num("invalidation_not_prefetched", m.invalidation_not_prefetched)
        .num("invalidation_prefetched", m.invalidation_prefetched)
        .num("prefetch_in_progress", m.prefetch_in_progress);
    o.raw("miss_breakdown", miss.finish());

    let pf = report.prefetch;
    let mut prefetch = JsonObject::new();
    prefetch
        .num("executed", pf.executed)
        .num("hits", pf.hits)
        .num("duplicates", pf.duplicates)
        .num("fills", pf.fills)
        .num("wasted_evicted", pf.wasted_evicted)
        .num("wasted_invalidated", pf.wasted_invalidated)
        .num("buffer_stalls", pf.buffer_stalls);
    o.raw("prefetch", prefetch.finish());

    // Omitted entirely when the hardware prefetcher never ran, so existing
    // consumers of the disabled path keep seeing byte-identical documents.
    let h = report.hw_prefetch;
    if !h.is_empty() {
        let mut hw = JsonObject::new();
        hw.num("trained", h.trained)
            .num("issued", h.issued)
            .num("useful", h.useful)
            .num("late", h.late)
            .num("useless", h.useless)
            .float("accuracy", h.accuracy());
        o.raw("hw_prefetch", hw.finish());
    }

    let b = report.bus;
    let mut bus = JsonObject::new();
    bus.num("busy_cycles", b.busy_cycles)
        .num("reads", b.reads)
        .num("read_exclusives", b.read_exclusives)
        .num("upgrades", b.upgrades)
        .num("writebacks", b.writebacks)
        .num("prefetch_grants", b.prefetch_grants)
        .num("queueing_cycles", b.queueing_cycles);
    o.raw("bus", bus.finish());

    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_shape() {
        let mut o = JsonObject::new();
        o.num("n", 3).float("f", 0.5).string("s", "x\"y");
        assert_eq!(o.finish(), "{\"n\":3,\"f\":0.500000,\"s\":\"x\\\"y\"}");
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let r = SimReport::default();
        let j = report_json("Water/NP @8cy", &r, 0);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"experiment\":\"Water/NP @8cy\""));
        assert!(j.contains("\"miss_breakdown\":{"));
        assert!(j.contains("\"bus\":{"));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.float("x", f64::NAN);
        assert_eq!(o.finish(), "{\"x\":null}");
    }
}
