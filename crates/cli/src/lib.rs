//! Implementation of the `charlie` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell around [`run_cli`], so every
//! command is unit-testable. See [`HELP`] for the user-facing synopsis.

pub mod args;
pub mod commands;
pub mod json;

use args::{Args, ArgsError};
use std::io::Write;

/// The `charlie --help` text.
pub const HELP: &str = "\
charlie — bus-based multiprocessor cache-prefetching simulator
(Tullsen & Eggers, ISCA 1993, reproduced in Rust)

USAGE:
  charlie <command> [options]

COMMANDS:
  run            simulate one workload/strategy/architecture cell
                   --workload topopt|pverify|locusroute|mp3d|water (default mp3d)
                   --strategy np|pref|excl|lpd|pws|excl-rmw        (default pref)
                   --transfer 4..32      contended data-transfer cycles (default 8)
                   --procs N             processors (default 8)
                   --refs N              references per processor (default 160000)
                   --seed N              workload seed
                   --layout interleaved|padded   (§4.4 restructuring)
                   --warmup N            exclude the first N accesses from stats
                   --victim N            per-processor victim-buffer entries
                   --protocol invalidate|update  coherence policy
                   --check               assert coherence invariants after
                                         every bus transaction (always on in
                                         debug builds)
                   --json                machine-readable output
  sweep          Figure-2 panel: relative execution time across latencies
                   --workload …  [--json --jobs N --resume FILE]
                   --resume FILE  journal completed cells to FILE and skip
                                  cells already journaled there, so a killed
                                  sweep picks up where it left off (the
                                  resumed output is byte-identical)
  export-trace   generate a workload and write it as a text trace
                   --workload …  --out FILE  [--refs N --procs N --seed N
                   --strategy …  --layout …]
  run-trace      simulate a text trace file
                   --file FILE  [--transfer N --strategy np|pref|… --warmup N
                   --victim N --protocol … --check --json]
  experiments    regenerate paper exhibits
                   positional: table1 figure1 table2 figure2 figure3 table3
                               table4 table5 proc-util all   [--csv --jobs N]
  bench          time the representative grid slice (Mp3d x all strategies x
                 all latencies) and print a BENCH_charlie.json-style snapshot
                   --quick          ~8x smaller slice (the CI smoke size)
                   --label NAME     label the snapshot (default quick/full)
                   --out FILE       write the snapshot as JSON to FILE
                   --baseline FILE  compare events/sec against FILE
                                    (runs.quick_baseline when --quick, else
                                    runs.after) and fail on a >20% regression
                   [--refs N --procs N --seed N]
  help           print this text

OPTIONS:
  --jobs N       worker threads for the experiment grid (0 = one per core,
                 the default). Reports are bit-identical for every N: each
                 experiment re-derives its trace from the seed and simulates
                 in isolation.

ENVIRONMENT:
  CHARLIE_REFS / CHARLIE_PROCS / CHARLIE_SEED set experiment-suite defaults;
  CHARLIE_JOBS sets the worker count for the charlie-bench binaries.
";

/// Runs the CLI on `argv` (without the program name), writing to `out`.
///
/// Returns the process exit code.
pub fn run_cli<W: Write>(argv: Vec<String>, out: &mut W) -> i32 {
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if parsed.switch("help") || parsed.command.as_deref() == Some("help") {
        let _ = write!(out, "{HELP}");
        return 0;
    }
    let result: Result<(), ArgsError> = match parsed.command.as_deref() {
        Some("run") => commands::run(&parsed, out),
        Some("sweep") => commands::sweep(&parsed, out),
        Some("export-trace") => commands::export_trace(&parsed, out),
        Some("run-trace") => commands::run_trace(&parsed, out),
        Some("experiments") => commands::experiments(&parsed, out),
        Some("bench") => commands::bench(&parsed, out),
        Some(other) => Err(ArgsError(format!("unknown command {other:?}; try `charlie help`"))),
        None => {
            let _ = write!(out, "{HELP}");
            return 0;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> (i32, String) {
        let mut out = Vec::new();
        let code = run_cli(tokens.iter().map(|s| s.to_string()).collect(), &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_command_prints_help() {
        let (code, text) = run(&[]);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, text) = run(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn run_small_cell_text() {
        let (code, text) =
            run(&["run", "--workload", "water", "--refs", "1500", "--procs", "2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cycles"), "{text}");
    }

    #[test]
    fn run_small_cell_json() {
        let (code, text) = run(&[
            "run", "--workload", "water", "--strategy", "pws", "--refs", "1200", "--procs", "2",
            "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('{'), "{text}");
        assert!(text.contains("\"cpu_miss_rate\""));
    }

    #[test]
    fn run_rejects_bad_workload() {
        let (code, text) = run(&["run", "--workload", "spice"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown workload"));
    }

    #[test]
    fn run_rejects_unknown_option() {
        let (code, text) = run(&["run", "--wrokload", "mp3d"]);
        assert_eq!(code, 2);
        assert!(text.contains("--wrokload"));
    }

    #[test]
    fn trace_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("water.trace");
        let path_s = path.to_str().unwrap();

        let (code, _) = run(&[
            "export-trace", "--workload", "water", "--refs", "800", "--procs", "2", "--out",
            path_s,
        ]);
        assert_eq!(code, 0);
        assert!(path.exists());

        let (code, text) = run(&["run-trace", "--file", path_s, "--strategy", "pref", "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"prefetches_inserted\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_trace_missing_file_fails_cleanly() {
        let (code, text) = run(&["run-trace", "--file", "/nonexistent/xyz.trace"]);
        assert_eq!(code, 2);
        assert!(text.contains("error"));
    }

    #[test]
    fn run_with_victim_and_update_protocol() {
        let (code, text) = run(&[
            "run", "--workload", "topopt", "--refs", "1500", "--procs", "2", "--victim", "4",
            "--protocol", "update", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"invalidation_miss_rate\":0.000000"), "{text}");
    }

    #[test]
    fn run_rejects_bad_protocol() {
        let (code, text) = run(&["run", "--protocol", "dragonfly", "--refs", "100", "--procs", "1"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown protocol"));
    }

    #[test]
    fn experiments_unknown_exhibit_fails() {
        let (code, text) = run(&["experiments", "table99"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown exhibit"));
    }

    fn sweep_args(jobs: &str) -> Vec<&str> {
        vec![
            "sweep", "--workload", "water", "--refs", "900", "--procs", "2", "--json", "--jobs",
            jobs,
        ]
    }

    #[test]
    fn sweep_accepts_jobs_zero_meaning_one_per_core() {
        let (code, text) = run(&sweep_args("0"));
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('['), "{text}");
    }

    #[test]
    fn sweep_accepts_jobs_one() {
        let (code, text) = run(&sweep_args("1"));
        assert_eq!(code, 0, "{text}");
    }

    #[test]
    fn sweep_clamps_absurd_jobs() {
        // usize::MAX workers must be clamped, not spawned.
        let (code, text) = run(&sweep_args("18446744073709551615"));
        assert_eq!(code, 0, "{text}");
    }

    #[test]
    fn sweep_falls_back_to_serial_on_non_numeric_jobs() {
        // Parallelism is an optimization: a bad --jobs value warns on
        // stderr and runs serially instead of killing the sweep.
        let (code, text) = run(&sweep_args("many"));
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('['), "{text}");
    }

    #[test]
    fn run_accepts_check_switch() {
        let (code, text) = run(&[
            "run", "--workload", "mp3d", "--strategy", "pws", "--refs", "1200", "--procs", "2",
            "--check", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"cpu_miss_rate\""), "{text}");
    }

    #[test]
    fn sweep_resume_is_byte_identical_to_fresh() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        let ckpt_s = ckpt.to_str().unwrap().to_owned();

        let (code_fresh, fresh) = run(&sweep_args("2"));
        assert_eq!(code_fresh, 0, "{fresh}");

        // First checkpointed pass journals every cell…
        let mut args = sweep_args("2");
        args.extend(["--resume", &ckpt_s]);
        let (code_a, a) = run(&args);
        assert_eq!(code_a, 0, "{a}");
        assert_eq!(a, fresh, "checkpointing must not change the output");
        let journal_len = std::fs::metadata(&ckpt).unwrap().len();
        assert!(journal_len > 0, "journal recorded the cells");

        // …and a resumed pass replays the journal (simulating nothing new),
        // rendering byte-identical output without re-journaling.
        let (code_b, b) = run(&args);
        assert_eq!(code_b, 0, "{b}");
        assert_eq!(b, fresh, "resumed sweep must be byte-identical");
        assert_eq!(
            std::fs::metadata(&ckpt).unwrap().len(),
            journal_len,
            "fully-resumed sweep appends nothing"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_json_is_byte_stable_across_invocations_and_worker_counts() {
        // Same seed → byte-identical JSON, whatever the parallelism.
        let (code_a, a) = run(&sweep_args("1"));
        let (code_b, b) = run(&sweep_args("1"));
        let (code_c, c) = run(&sweep_args("4"));
        assert_eq!((code_a, code_b, code_c), (0, 0, 0));
        assert_eq!(a, b, "same invocation twice must be byte-identical");
        assert_eq!(a, c, "worker count must not leak into the output");
    }

    #[test]
    fn run_json_is_byte_stable() {
        let args =
            ["run", "--workload", "mp3d", "--refs", "1000", "--procs", "2", "--seed", "42", "--json"];
        let (code_a, a) = run(&args);
        let (code_b, b) = run(&args);
        assert_eq!((code_a, code_b), (0, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn help_documents_jobs_flag() {
        let (code, text) = run(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("--jobs N"));
        assert!(text.contains("CHARLIE_JOBS"));
        assert!(text.contains("--check"));
        assert!(text.contains("--resume FILE"));
    }
}
