//! Implementation of the `charlie` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell around [`run_cli`], so every
//! command is unit-testable. See [`HELP`] for the user-facing synopsis.

pub mod args;
pub mod commands;
pub mod json;
pub mod serve;

use args::{Args, ArgsError};
use std::io::Write;

/// The `charlie --help` text.
pub const HELP: &str = "\
charlie — bus-based multiprocessor cache-prefetching simulator
(Tullsen & Eggers, ISCA 1993, reproduced in Rust)

USAGE:
  charlie <command> [options]

COMMANDS:
  run            simulate one workload/strategy/architecture cell
                   --workload topopt|pverify|locusroute|mp3d|water|pointerchase
                                                                  (default mp3d)
                   --strategy np|pref|excl|lpd|pws|excl-rmw        (default pref)
                   --transfer 4..32      contended data-transfer cycles (default 8)
                   --procs N             processors (default 8)
                   --refs N              references per processor (default 160000)
                   --seed N              workload seed
                   --layout interleaved|padded   (§4.4 restructuring)
                   --warmup N            exclude the first N accesses from stats
                   --victim N            per-processor victim-buffer entries
                   --protocol invalidate|update|dragon|moesi
                                         coherence policy (Illinois
                                         write-invalidate, Firefly-style
                                         write-update, Dragon write-update,
                                         MOESI; default invalidate)
                   --hw-prefetch KIND[:DEGREE[:DISTANCE]]
                                         on-line hardware prefetcher
                                         (off|stride|sms|markov; default off;
                                         degree 2, stride distance 4)
                   --check               assert coherence invariants after
                                         every bus transaction (always on in
                                         debug builds)
                   --json                machine-readable output
                   --sample-interval N --trace-out FILE --trace-cats LIST
                                         observability hooks (see profile);
                                         run output stays byte-identical
                   --sample-mode smarts|simpoint
                                         sampled simulation: fast-forward
                                         most windows functionally, simulate
                                         a representative fraction in detail,
                                         and report execution time and bus
                                         utilization as estimates with a 99%
                                         confidence interval (10-100x faster
                                         on long traces; exact path untouched
                                         when absent)
                   --sample-window N     accesses per window (default 4096)
                   --sample-period N     smarts: windows per detailed sample
                                         (default 37; prime, so it cannot
                                         alias with periodic workload phases)
                   --sample-warm N       warm windows before each detailed
                                         one (default 2)
                   --sample-cold N       smarts: detailed cold-start windows
                                         measured exactly, not extrapolated
                                         (default 8)
                   --sample-k N          simpoint: max clusters for the BIC
                                         sweep (default 8)
                   --sample-seed N       simpoint: k-means seed
  profile        time-resolved profile of one cell: a per-window timeline
                 (bus utilization/queueing, per-processor busy and stall,
                 fill latencies, prefetch-buffer occupancy) plus the
                 saturation onset — the first window with bus busy > 90%
                   positional: workload (or --workload; default mp3d)
                   --sample-interval N   window size in cycles (default 10000)
                   --csv / --json        full timeline as CSV rows / a JSON
                                         document embedding the run report
                   --trace-out FILE      also write a structured JSONL event
                                         trace (bus grants, coherence
                                         transitions, prefetch lifecycle)
                   --trace-cats LIST     comma-set of bus,coherence,prefetch
                                         (default all)
                   [--strategy … --transfer N --procs N --refs N --seed N
                    --layout … --warmup N --victim N --protocol …
                    --hw-prefetch …]
  sweep          Figure-2 panel: relative execution time across latencies
                   --workload …  [--json --jobs N --resume FILE --protocol …]
                   --resume FILE  journal completed cells to FILE and skip
                                  cells already journaled there, so a killed
                                  sweep picks up where it left off (the
                                  resumed output is byte-identical); the
                                  journal key pins the protocol, so resuming
                                  under a different --protocol refuses
                   --sample-interval N   record a timeline per cell (kept in
                                         the --resume journal)
                   --trace-out DIR       one JSONL event trace per cell
                   --trace-cats LIST     bus,coherence,prefetch (default all)
  export-trace   generate a workload and write it as a text trace
                   --workload …  --out FILE  [--refs N --procs N --seed N
                   --strategy …  --layout …]
  run-trace      simulate a text trace file
                   --file FILE  [--transfer N --strategy np|pref|… --warmup N
                   --victim N --protocol … --hw-prefetch … --check --json]
  experiments    regenerate paper exhibits
                   positional: table1 figure1 table2 figure2 figure3 table3
                               table4 table5 proc-util all   [--csv --jobs N]
                   hw-prefetch: on-line stride/SMS/Markov hardware
                               prefetchers vs the oracle PREF strategy
                               (post-paper; not included in \"all\")
                   protocols:  Illinois vs Firefly vs Dragon vs MOESI
                               coherence, NP and PREF, all five workloads
                               (post-paper; not included in \"all\")
  bench          time the representative grid slice (Mp3d x all strategies x
                 all latencies) and print a BENCH_charlie.json-style snapshot
                   --quick          ~8x smaller slice (the CI smoke size)
                   --sampled        run the slice under SMARTS sampling
                                    (DESIGN.md 17) instead of exact; the
                                    snapshot's events count the sampled
                                    run's (incompatible with --baseline)
                   --label NAME     label the snapshot (default
                                    quick/full/sampled)
                   --out FILE       write the snapshot as JSON to FILE
                                    (atomically: temp file + rename)
                   --baseline FILE  compare events/sec against FILE
                                    (runs.quick_baseline when --quick, else
                                    runs.after) and fail on a >20% regression
                   [--refs N --procs N --seed N]
  calibrate      measure the sampled-simulation error empirically: run a
                 grid sampled AND exact, print per-cell execution-time and
                 bus-utilization error, wall-clock/event speedups, and
                 whether each confidence interval contains the exact value;
                 with --tolerance, exit nonzero when any error exceeds it
                   --grid quick|paper  12-cell smoke grid or the full
                                       149-cell paper grid (default quick)
                   --tolerance PCT     error gate in percent (e.g. 2)
                   [--refs N --procs N --seed N --jobs N --json
                    --sample-mode … --sample-window N --sample-period N
                    --sample-warm N --sample-cold N --sample-k N
                    --sample-seed N]
  chaos          durability exercise: runs a reference sweep, then proves a
                 crash-point matrix over truncated journals, live injected
                 I/O faults (short/torn/enospc/eio/bitflip/crash), and
                 atomic snapshot writes all reproduce the reference output
                 byte-for-byte; exits nonzero on any divergence
                   --points K       crash points / seeded faults per phase
                                    (default 8)
                   --fault-seed N   seed for the mixed fault plan
                   --dir DIR        scratch directory (default under /tmp;
                                    kept on failure for forensics)
                   [--workload … --refs N --procs N --seed N --layout …
                    --jobs N]
  serve          run the always-on simulation daemon: accepts submitted
                 campaigns over TCP (newline-delimited JSON; also a minimal
                 HTTP shim: GET /stats, POST /submit), admission-controls
                 them against a bounded queue (sheds with a structured
                 retryable reply and HTTP 429 + Retry-After), coalesces
                 concurrent duplicate cells onto one simulation, and
                 journals every campaign so a killed daemon resumes
                 exactly-once per cell on restart. SIGTERM (or --shutdown)
                 drains: in-flight cells finish and journal, queued cells
                 are handed back with a resumable campaign token.
                   --addr HOST:PORT  listen address (default 127.0.0.1:7077;
                                     port 0 picks a free port and prints it)
                   --queue N         campaigns admitted concurrently before
                                     shedding (default 8)
                   --deadline-ms N   default per-request wall-clock deadline
                                     (0 = none; requests may override)
                   --jobs N          simulation worker threads (0 = cores)
                   --state-dir DIR   campaign journals (default
                                     charlie-serve-state)
                   --stats / --ping / --shutdown
                                     query or drain a running daemon at
                                     --addr instead of starting one
                                     (--stats with --state-dir reads fleet
                                     health offline, no daemon needed)
                   --worker          run as a lease-claiming fleet peer
                                     over --state-dir instead of listening:
                                     claims campaign cells via fsync'd
                                     journal leases, heartbeats them, and
                                     reclaims cells whose holder died
                   --worker-id ID / --lease-ms N / --poll-ms N
                                     worker identity (default w<pid>),
                                     lease duration (default 3000), idle
                                     poll interval (default 100)
                   --exit-when-idle  worker exits once every campaign in
                                     the state dir is fully published
  submit         submit a campaign to a running daemon and render the
                 streamed cells exactly as the local commands would
                   --grid paper      the full paper grid; stdout is
                                     byte-identical to all_experiments
                   --workload NAME   the Figure-2 sweep grid for NAME;
                                     stdout is byte-identical to `charlie
                                     sweep` (honors --layout and --json)
                   --deadline-ms N   per-request wall-clock deadline; on
                                     expiry the daemon answers
                                     WallClockExceeded with progress
                                     counters and keeps simulating for the
                                     cache
                   --workers N       no daemon: shard the campaign across N
                                     spawned `serve --worker` processes in
                                     --state-dir and join (0 = join
                                     externally started workers); output
                                     stays byte-identical even when workers
                                     die mid-grid
                   --sample-mode smarts|simpoint
                                     sampled-mode campaign (CIs journal
                                     with each cell; never coalesces with
                                     exact runs of the same grid) [with
                                     --sample-window/-period/-warm/-k/
                                     -seed/-cold overrides]
                   [--addr HOST:PORT --procs N --refs N --seed N
                    --layout … --hw-prefetch … --json --state-dir DIR
                    --lease-ms N]
  help           print this text

OPTIONS:
  --jobs N       worker threads for the experiment grid (0 = one per core,
                 the default). Reports are bit-identical for every N: each
                 experiment re-derives its trace from the seed and simulates
                 in isolation.

ENVIRONMENT:
  CHARLIE_REFS / CHARLIE_PROCS / CHARLIE_SEED set experiment-suite defaults;
  CHARLIE_JOBS sets the worker count for the charlie-bench binaries.
  CHARLIE_DEBUG_LINE=HEX streams coherence trace events touching that line
  address to stderr (shorthand for --trace-out /dev/stderr --trace-cats
  coherence plus a line filter).
  CHARLIE_WALL_LIMIT_MS aborts any single run exceeding that many wall-clock
  milliseconds (0/unset = off; the deterministic event budget stays armed
  either way).
  CHARLIE_CHAOS=tag:kind@offset[,...] injects write faults into tagged
  persistence writers (journal, lease, trace, report, bench) for ad-hoc
  durability experiments; kinds: short, torn, enospc, eio, bitflip, crash,
  leasecrash, stalehb.
  CHARLIE_JOURNAL_SYNC=1 makes checkpoint-journal appends fsync (default:
  flush-only; see DESIGN.md \"Chaos testing & durability\").
  CHARLIE_SERVE_ADDR / CHARLIE_SERVE_QUEUE / CHARLIE_SERVE_DEADLINE_MS set
  the serve daemon's listen address, admission-queue capacity, and default
  per-request deadline (flags override; see DESIGN.md \"Service
  architecture\").
";

/// Runs the CLI on `argv` (without the program name), writing to `out`.
///
/// Returns the process exit code.
pub fn run_cli<W: Write>(argv: Vec<String>, out: &mut W) -> i32 {
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if parsed.switch("help") || parsed.command.as_deref() == Some("help") {
        let _ = write!(out, "{HELP}");
        return 0;
    }
    let result: Result<(), ArgsError> = match parsed.command.as_deref() {
        Some("run") => commands::run(&parsed, out),
        Some("profile") => commands::profile(&parsed, out),
        Some("sweep") => commands::sweep(&parsed, out),
        Some("export-trace") => commands::export_trace(&parsed, out),
        Some("run-trace") => commands::run_trace(&parsed, out),
        Some("experiments") => commands::experiments(&parsed, out),
        Some("bench") => commands::bench(&parsed, out),
        Some("calibrate") => commands::calibrate(&parsed, out),
        Some("chaos") => commands::chaos(&parsed, out),
        Some("serve") => serve::serve(&parsed, out),
        Some("submit") => serve::submit(&parsed, out),
        Some(other) => Err(ArgsError(format!("unknown command {other:?}; try `charlie help`"))),
        None => {
            let _ = write!(out, "{HELP}");
            return 0;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> (i32, String) {
        let mut out = Vec::new();
        let code = run_cli(tokens.iter().map(|s| s.to_string()).collect(), &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_command_prints_help() {
        let (code, text) = run(&[]);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, text) = run(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn run_small_cell_text() {
        let (code, text) =
            run(&["run", "--workload", "water", "--refs", "1500", "--procs", "2"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cycles"), "{text}");
    }

    #[test]
    fn run_small_cell_json() {
        let (code, text) = run(&[
            "run", "--workload", "water", "--strategy", "pws", "--refs", "1200", "--procs", "2",
            "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('{'), "{text}");
        assert!(text.contains("\"cpu_miss_rate\""));
    }

    #[test]
    fn run_rejects_bad_workload() {
        let (code, text) = run(&["run", "--workload", "spice"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown workload"));
    }

    #[test]
    fn run_rejects_unknown_option() {
        let (code, text) = run(&["run", "--wrokload", "mp3d"]);
        assert_eq!(code, 2);
        assert!(text.contains("--wrokload"));
    }

    #[test]
    fn trace_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("water.trace");
        let path_s = path.to_str().unwrap();

        let (code, _) = run(&[
            "export-trace", "--workload", "water", "--refs", "800", "--procs", "2", "--out",
            path_s,
        ]);
        assert_eq!(code, 0);
        assert!(path.exists());

        let (code, text) = run(&["run-trace", "--file", path_s, "--strategy", "pref", "--json"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"prefetches_inserted\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_trace_missing_file_fails_cleanly() {
        let (code, text) = run(&["run-trace", "--file", "/nonexistent/xyz.trace"]);
        assert_eq!(code, 2);
        assert!(text.contains("error"));
    }

    #[test]
    fn run_with_victim_and_update_protocol() {
        let (code, text) = run(&[
            "run", "--workload", "topopt", "--refs", "1500", "--procs", "2", "--victim", "4",
            "--protocol", "update", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"invalidation_miss_rate\":0.000000"), "{text}");
    }

    #[test]
    fn run_rejects_bad_protocol_listing_choices() {
        let (code, text) = run(&["run", "--protocol", "dragonfly", "--refs", "100", "--procs", "1"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown protocol"), "{text}");
        // The error names every valid choice, not a stale subset.
        for choice in ["invalidate", "update", "dragon", "moesi"] {
            assert!(text.contains(choice), "choice {choice} missing from {text:?}");
        }
    }

    #[test]
    fn run_with_dragon_protocol_eliminates_invalidation_misses() {
        let (code, text) = run(&[
            "run", "--workload", "topopt", "--refs", "1500", "--procs", "2", "--protocol",
            "dragon", "--check", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"invalidation_miss_rate\":0.000000"), "{text}");
    }

    #[test]
    fn run_with_moesi_protocol_checks_clean() {
        let (code, text) = run(&[
            "run", "--workload", "mp3d", "--refs", "1500", "--procs", "2", "--protocol", "moesi",
            "--check", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"cpu_miss_rate\""), "{text}");
    }

    #[test]
    fn sweep_resume_refuses_protocol_change_naming_both_keys() {
        let dir =
            std::env::temp_dir().join(format!("charlie-cli-proto-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        let ckpt_s = ckpt.to_str().unwrap().to_owned();

        let mut dragon_args = sweep_args("2");
        dragon_args.extend(["--resume", &ckpt_s, "--protocol", "dragon"]);
        let (code, text) = run(&dragon_args);
        assert_eq!(code, 0, "{text}");

        // Resuming the same journal under a different protocol must refuse,
        // and the mismatch error names both campaign keys.
        let mut moesi_args = sweep_args("2");
        moesi_args.extend(["--resume", &ckpt_s, "--protocol", "moesi"]);
        let (code, text) = run(&moesi_args);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("refusing to resume"), "{text}");
        assert!(text.contains("proto=dragon"), "{text}");
        assert!(text.contains("proto=moesi"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiments_unknown_exhibit_fails() {
        let (code, text) = run(&["experiments", "table99"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown exhibit"));
    }

    fn sweep_args(jobs: &str) -> Vec<&str> {
        vec![
            "sweep", "--workload", "water", "--refs", "900", "--procs", "2", "--json", "--jobs",
            jobs,
        ]
    }

    #[test]
    fn sweep_accepts_jobs_zero_meaning_one_per_core() {
        let (code, text) = run(&sweep_args("0"));
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('['), "{text}");
    }

    #[test]
    fn sweep_accepts_jobs_one() {
        let (code, text) = run(&sweep_args("1"));
        assert_eq!(code, 0, "{text}");
    }

    #[test]
    fn sweep_clamps_absurd_jobs() {
        // usize::MAX workers must be clamped, not spawned.
        let (code, text) = run(&sweep_args("18446744073709551615"));
        assert_eq!(code, 0, "{text}");
    }

    #[test]
    fn sweep_falls_back_to_serial_on_non_numeric_jobs() {
        // Parallelism is an optimization: a bad --jobs value warns on
        // stderr and runs serially instead of killing the sweep.
        let (code, text) = run(&sweep_args("many"));
        assert_eq!(code, 0, "{text}");
        assert!(text.trim().starts_with('['), "{text}");
    }

    #[test]
    fn run_accepts_check_switch() {
        let (code, text) = run(&[
            "run", "--workload", "mp3d", "--strategy", "pws", "--refs", "1200", "--procs", "2",
            "--check", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"cpu_miss_rate\""), "{text}");
    }

    #[test]
    fn sweep_resume_is_byte_identical_to_fresh() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        let ckpt_s = ckpt.to_str().unwrap().to_owned();

        let (code_fresh, fresh) = run(&sweep_args("2"));
        assert_eq!(code_fresh, 0, "{fresh}");

        // First checkpointed pass journals every cell…
        let mut args = sweep_args("2");
        args.extend(["--resume", &ckpt_s]);
        let (code_a, a) = run(&args);
        assert_eq!(code_a, 0, "{a}");
        assert_eq!(a, fresh, "checkpointing must not change the output");
        let journal_len = std::fs::metadata(&ckpt).unwrap().len();
        assert!(journal_len > 0, "journal recorded the cells");

        // …and a resumed pass replays the journal (simulating nothing new),
        // rendering byte-identical output without re-journaling.
        let (code_b, b) = run(&args);
        assert_eq!(code_b, 0, "{b}");
        assert_eq!(b, fresh, "resumed sweep must be byte-identical");
        assert_eq!(
            std::fs::metadata(&ckpt).unwrap().len(),
            journal_len,
            "fully-resumed sweep appends nothing"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_json_is_byte_stable_across_invocations_and_worker_counts() {
        // Same seed → byte-identical JSON, whatever the parallelism.
        let (code_a, a) = run(&sweep_args("1"));
        let (code_b, b) = run(&sweep_args("1"));
        let (code_c, c) = run(&sweep_args("4"));
        assert_eq!((code_a, code_b, code_c), (0, 0, 0));
        assert_eq!(a, b, "same invocation twice must be byte-identical");
        assert_eq!(a, c, "worker count must not leak into the output");
    }

    #[test]
    fn run_json_is_byte_stable() {
        let args =
            ["run", "--workload", "mp3d", "--refs", "1000", "--procs", "2", "--seed", "42", "--json"];
        let (code_a, a) = run(&args);
        let (code_b, b) = run(&args);
        assert_eq!((code_a, code_b), (0, 0));
        assert_eq!(a, b);
    }

    /// Pulls every `"key":N` integer out of a JSON string.
    fn extract_nums(json: &str, key: &str) -> Vec<u64> {
        let needle = format!("\"{key}\":");
        let mut out = Vec::new();
        let mut rest = json;
        while let Some(at) = rest.find(&needle) {
            rest = &rest[at + needle.len()..];
            let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
            out.push(rest[..end].parse().expect("integer field"));
        }
        out
    }

    #[test]
    fn run_output_is_identical_with_observability_on() {
        // The acceptance bar for "zero-cost when disabled" and "sampling
        // does not perturb": run output must not change when the sampler
        // and tracer are armed.
        let base = ["run", "--workload", "mp3d", "--refs", "1200", "--procs", "2", "--json"];
        let (code_a, plain) = run(&base);
        let mut sampled_args = base.to_vec();
        sampled_args.extend(["--sample-interval", "500"]);
        let (code_b, sampled) = run(&sampled_args);
        assert_eq!((code_a, code_b), (0, 0), "{plain}{sampled}");
        assert_eq!(plain, sampled, "sampling must not change run output");
    }

    #[test]
    fn profile_text_mentions_saturation() {
        let (code, text) = run(&[
            "profile", "water", "--refs", "1500", "--procs", "2", "--sample-interval", "2000",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("timeline:"), "{text}");
        assert!(text.contains("saturat"), "{text}");
    }

    #[test]
    fn profile_json_timeline_sums_to_final_bus_stats() {
        let (code, text) = run(&[
            "profile", "--workload", "mp3d", "--strategy", "pws", "--refs", "2000", "--procs",
            "2", "--sample-interval", "1000", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        let busy_cycles = extract_nums(&text, "busy_cycles");
        assert_eq!(busy_cycles.len(), 1, "{text}");
        let window_busy: u64 = extract_nums(&text, "bus_busy").iter().sum();
        assert_eq!(window_busy, busy_cycles[0], "timeline must tile the run exactly");
        assert!(text.contains("\"sample_interval\":1000"), "{text}");
        assert!(text.contains("\"saturation_onset\":"), "{text}");
    }

    #[test]
    fn profile_csv_has_one_row_per_window() {
        let (code, text) = run(&[
            "profile", "water", "--refs", "1000", "--procs", "2", "--sample-interval", "4000",
            "--csv",
        ]);
        assert_eq!(code, 0, "{text}");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("start,end,bus_utilization"), "{text}");
        assert!(lines.len() >= 2, "at least one window: {text}");
    }

    #[test]
    fn profile_rejects_two_workloads() {
        let (code, text) = run(&["profile", "water", "mp3d"]);
        assert_eq!(code, 2);
        assert!(text.contains("at most one positional"), "{text}");
    }

    #[test]
    fn run_trace_out_writes_jsonl_events() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();
        let (code, _) = run(&[
            "run", "--workload", "mp3d", "--refs", "800", "--procs", "2", "--trace-out", path_s,
            "--trace-cats", "bus,prefetch",
        ]);
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(!body.is_empty(), "bus events were traced");
        for line in body.lines() {
            assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "JSONL: {line}");
            assert!(!line.contains("\"cat\":\"coherence\""), "filtered out: {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_bad_trace_cats() {
        let (code, text) = run(&[
            "run", "--refs", "100", "--procs", "1", "--trace-out", "/dev/null", "--trace-cats",
            "bus,frobnication",
        ]);
        assert_eq!(code, 2);
        assert!(text.contains("frobnication"), "{text}");
    }

    #[test]
    fn bench_rejects_zero_throughput_baseline() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            "{\"runs\":{\"quick_baseline\":{\"events_per_sec\":0}}}",
        )
        .unwrap();
        let path_s = path.to_str().unwrap();
        let (code, text) = run(&[
            "bench", "--quick", "--refs", "300", "--procs", "2", "--baseline", path_s,
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("not a positive throughput"), "{text}");
        assert!(text.contains("regenerate the baseline"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_rejects_missing_baseline_key() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-bench2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, "{\"runs\":{}}").unwrap();
        let path_s = path.to_str().unwrap();
        let (code, text) = run(&[
            "bench", "--quick", "--refs", "300", "--procs", "2", "--baseline", path_s,
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("no runs.quick_baseline.events_per_sec"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_documents_jobs_flag() {
        let (code, text) = run(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("--jobs N"));
        assert!(text.contains("CHARLIE_JOBS"));
        assert!(text.contains("--check"));
        assert!(text.contains("--resume FILE"));
        assert!(text.contains("profile"));
        assert!(text.contains("--sample-interval N"));
        assert!(text.contains("--trace-out"));
        assert!(text.contains("CHARLIE_DEBUG_LINE"));
    }

    #[test]
    fn help_documents_chaos() {
        let (code, text) = run(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("chaos"));
        assert!(text.contains("--points K"));
        assert!(text.contains("CHARLIE_CHAOS"));
        assert!(text.contains("CHARLIE_JOURNAL_SYNC"));
        assert!(text.contains("CHARLIE_WALL_LIMIT_MS"));
    }

    #[test]
    fn chaos_rejects_unknown_option() {
        let (code, text) = run(&["chaos", "--fault-sede", "42"]);
        assert_eq!(code, 2);
        assert!(text.contains("--fault-sede"), "{text}");
    }

    #[test]
    fn help_documents_hw_prefetch() {
        let (code, text) = run(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("--hw-prefetch"));
        assert!(text.contains("pointerchase"));
        assert!(text.contains("hw-prefetch:"));
    }

    #[test]
    fn run_pointer_chase_with_hw_prefetcher() {
        let (code, text) = run(&[
            "run", "--workload", "pointerchase", "--strategy", "np", "--refs", "4000", "--procs",
            "2", "--hw-prefetch", "markov", "--check", "--json",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"cpu_miss_rate\""), "{text}");
    }

    #[test]
    fn run_rejects_bad_hw_prefetch_spec() {
        let (code, text) = run(&[
            "run", "--refs", "100", "--procs", "1", "--hw-prefetch", "nextline",
        ]);
        assert_eq!(code, 2);
        assert!(text.contains("--hw-prefetch"), "{text}");
    }

    #[test]
    fn hw_prefetch_off_run_output_is_byte_identical() {
        // Degree 0 disables the prefetcher entirely: the run must be
        // bit-identical to one with no --hw-prefetch at all.
        let base = ["run", "--workload", "mp3d", "--refs", "1200", "--procs", "2", "--json"];
        let (code_a, plain) = run(&base);
        let mut off_args = base.to_vec();
        off_args.extend(["--hw-prefetch", "stride:0"]);
        let (code_b, off) = run(&off_args);
        assert_eq!((code_a, code_b), (0, 0), "{plain}{off}");
        assert_eq!(plain, off, "disabled hardware prefetcher must cost nothing");
    }

    #[test]
    fn run_with_stride_prefetcher_traces_prefetch_events() {
        let dir = std::env::temp_dir().join(format!("charlie-cli-hwtrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hw.jsonl");
        let path_s = path.to_str().unwrap();
        let (code, _) = run(&[
            "run", "--workload", "mp3d", "--strategy", "np", "--refs", "1500", "--procs", "2",
            "--hw-prefetch", "stride:2:4", "--trace-out", path_s, "--trace-cats", "prefetch",
        ]);
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"ev\":\"issued\""), "hardware issues traced: {body:.200}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
