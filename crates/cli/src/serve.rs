//! `charlie serve` (the daemon and its control plane) and `charlie submit`
//! (a campaign client that renders daemon-streamed cells exactly like the
//! local batch commands would).
//!
//! `submit --grid paper` reproduces the stdout of the `all_experiments`
//! binary byte-for-byte, and `submit --workload W` that of `charlie sweep`:
//! the daemon streams journal-format summaries, the client restores them
//! into a [`Lab`] memo, and the exhibits render from that memo — the same
//! code path as a local run, fed from the wire instead of the simulator.

use crate::args::{Args, ArgsError};
use charlie::bus::BusConfig;
use charlie::prefetch::{HwPrefetchConfig, Strategy};
use charlie::workloads::Layout;
use charlie::{experiments as exhibits, Experiment, Lab, RunConfig};
use charlie_serve::{client, worker, ServeConfig, Server};
use std::io::Write;
use std::path::PathBuf;

fn addr_from(args: &Args, cfg: &ServeConfig) -> String {
    args.get("addr").map(str::to_owned).unwrap_or_else(|| cfg.addr.clone())
}

/// `charlie serve`.
pub fn serve<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "addr", "queue", "deadline-ms", "jobs", "state-dir", "stats", "ping", "shutdown",
        "worker", "worker-id", "lease-ms", "poll-ms", "exit-when-idle",
    ])?;
    let mut cfg = ServeConfig::from_env();
    cfg.addr = addr_from(args, &cfg);
    cfg.queue = args.get_or("queue", cfg.queue)?;
    cfg.deadline_ms = args.get_or("deadline-ms", cfg.deadline_ms)?;
    cfg.jobs = args.get_or("jobs", cfg.jobs)?;
    if let Some(dir) = args.get("state-dir") {
        cfg.state_dir = dir.into();
    }

    // Offline fleet health: with an explicit --state-dir, --stats reads
    // the health files and lease tables directly — no daemon required, so
    // a dead fleet is still observable.
    if args.switch("stats") && args.get("state-dir").is_some() {
        let section = worker::render_workers_section(&cfg.state_dir)
            .unwrap_or_else(|| "{\"total\":0,\"live\":0,\"detail\":[]}".to_owned());
        let _ = writeln!(out, "{{\"workers\":{section}}}");
        return Ok(());
    }

    // Peer worker mode: no socket, no daemon — claim cells of any
    // campaign manifest in the state dir through fsync'd journal leases.
    if args.switch("worker") {
        let mut wcfg = worker::WorkerConfig::new(cfg.state_dir.clone());
        if let Some(id) = args.get("worker-id") {
            wcfg.id = id.to_owned();
        }
        wcfg.lease_ms = args.get_or("lease-ms", wcfg.lease_ms)?;
        wcfg.poll_ms = args.get_or("poll-ms", wcfg.poll_ms)?;
        if cfg.jobs > 0 {
            wcfg.jobs = cfg.jobs;
        }
        wcfg.exit_when_idle = args.switch("exit-when-idle");
        if wcfg.lease_ms == 0 {
            return Err(ArgsError("--lease-ms must be at least 1".into()));
        }
        let _ = writeln!(out, "worker {} on {}", wcfg.id, wcfg.state_dir.display());
        let _ = out.flush();
        let report = worker::run_worker(&wcfg).map_err(|e| ArgsError(e.to_string()))?;
        let _ = writeln!(
            out,
            "worker {}: claimed {} (reclaimed {}), completed {}, fenced {}{}",
            wcfg.id,
            report.claimed,
            report.reclaimed,
            report.completed,
            report.fenced,
            if report.drained { "; drained" } else { "" },
        );
        return Ok(());
    }

    // Control-plane queries against a running daemon.
    if args.switch("stats") {
        let reply = client::stats(&cfg.addr).map_err(|e| ArgsError(e.to_string()))?;
        let _ = writeln!(out, "{reply}");
        return Ok(());
    }
    if args.switch("ping") {
        let reply = client::ping(&cfg.addr).map_err(|e| ArgsError(e.to_string()))?;
        let _ = writeln!(out, "{reply}");
        return Ok(());
    }
    if args.switch("shutdown") {
        let reply = client::shutdown(&cfg.addr).map_err(|e| ArgsError(e.to_string()))?;
        let _ = writeln!(out, "{reply}");
        return Ok(());
    }

    if cfg.queue == 0 {
        return Err(ArgsError("--queue must be at least 1".into()));
    }
    let server = Server::bind(cfg).map_err(|e| ArgsError(e.to_string()))?;
    let addr = server.local_addr().map_err(|e| ArgsError(e.to_string()))?;
    // Announce the resolved address (port 0 picks a free one) before
    // blocking, so wrappers can discover where to connect.
    let _ = writeln!(out, "listening on {addr}");
    let _ = out.flush();
    server.run().map_err(|e| ArgsError(e.to_string()))?;
    let _ = writeln!(out, "drained; exiting");
    Ok(())
}

/// The `charlie sweep` grid for one workload (every strategy across the
/// paper's latency sweep, restructured when the layout is padded).
fn sweep_grid(workload: charlie::Workload, layout: Layout) -> Vec<Experiment> {
    Strategy::ALL
        .into_iter()
        .flat_map(|s| {
            BusConfig::PAPER_SWEEP.into_iter().map(move |lat| {
                let exp = Experiment::paper(workload, s, lat);
                if layout == Layout::Padded {
                    exp.restructured()
                } else {
                    exp
                }
            })
        })
        .collect()
}

/// `charlie submit`.
pub fn submit<W: Write>(args: &Args, out: &mut W) -> Result<(), ArgsError> {
    args.expect_known(&[
        "addr", "grid", "workload", "layout", "procs", "refs", "seed", "deadline-ms",
        "hw-prefetch", "protocol", "json", "workers", "state-dir", "lease-ms", "sample-mode",
        "sample-window", "sample-period", "sample-warm", "sample-k", "sample-seed", "sample-cold",
    ])?;
    let addr = addr_from(args, &ServeConfig::from_env());

    // Resolve every knob client-side with the daemon's own defaults and
    // send them explicitly: the rendered header and the executed cells
    // must agree even when the two processes see different environments.
    let defaults = RunConfig::default();
    let procs = args.get_or("procs", defaults.procs)?;
    let refs = args.get_or("refs", defaults.refs_per_proc)?;
    let seed = args.get_or("seed", defaults.seed)?;
    let hw_prefetch = match args.get("hw-prefetch") {
        None => None,
        Some(spec) => {
            let hw = HwPrefetchConfig::parse(spec).map_err(ArgsError)?;
            hw.is_enabled().then_some(hw)
        }
    };
    let protocol = match args.get("protocol") {
        None => None,
        Some(spec) => {
            let p = charlie::Protocol::parse(&spec.to_ascii_lowercase()).ok_or_else(|| {
                ArgsError(format!("unknown protocol {spec:?} ({})", charlie::Protocol::CHOICES))
            })?;
            (p != charlie::Protocol::WriteInvalidate).then_some(p)
        }
    };
    let deadline_ms = match args.get("deadline-ms") {
        None => None,
        Some(v) => {
            Some(v.parse().map_err(|_| ArgsError(format!("--deadline-ms: cannot parse {v:?}")))?)
        }
    };
    let sampling = crate::commands::sampling_from_args(args)?;

    let layout = match args.get("layout") {
        None | Some("interleaved") | Some("original") => Layout::Interleaved,
        Some("padded") | Some("restructured") => Layout::Padded,
        Some(other) => {
            return Err(ArgsError(format!("unknown layout {other:?} (interleaved, padded)")))
        }
    };
    let (grid, workload) = match (args.get("grid"), args.get("workload")) {
        (Some("paper"), None) => (client::Grid::Paper, None),
        (Some(other), None) => {
            return Err(ArgsError(format!("unknown grid {other:?} (expected paper)")))
        }
        (None, Some(name)) => {
            let workload = charlie::Workload::EXTENDED
                .into_iter()
                .find(|w| w.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| ArgsError(format!("unknown workload {name:?}")))?;
            (client::Grid::Cells(sweep_grid(workload, layout)), Some(workload))
        }
        _ => {
            return Err(ArgsError(
                "exactly one of --grid paper or --workload NAME is required".into(),
            ))
        }
    };

    let request = client::SubmitRequest {
        grid,
        procs: Some(procs),
        refs: Some(refs),
        seed: Some(seed),
        deadline_ms,
        hw_prefetch,
        protocol,
        sampling,
    };

    let mut lab = Lab::new(RunConfig {
        procs,
        refs_per_proc: refs,
        seed,
        hw_prefetch: hw_prefetch.unwrap_or(HwPrefetchConfig::OFF),
        protocol: protocol.unwrap_or(charlie::Protocol::WriteInvalidate),
        sampling,
        ..RunConfig::default()
    });

    // Fleet mode: no daemon — publish a manifest into the shared state
    // dir, spawn (or just join) lease-claiming workers, and render from
    // the shared journal once every cell is published.
    if let Some(n) = args.get("workers") {
        let n: usize =
            n.parse().map_err(|_| ArgsError(format!("--workers: cannot parse {n:?}")))?;
        let state_dir: PathBuf =
            args.get("state-dir").unwrap_or("charlie-serve-state").into();
        let lease_ms: u64 = args.get_or("lease-ms", 3000)?;
        return submit_fleet(n, &state_dir, lease_ms, &request, lab, workload, layout, args, out);
    }

    let mut campaign = String::new();
    let mut restored = 0u64;
    let mut failures: Vec<String> = Vec::new();
    let mut done = false;

    let frames = client::submit(&addr, &request).map_err(|e| ArgsError(e.to_string()))?;
    for frame in frames {
        match frame {
            client::Frame::Opened { campaign: token, restored: r, .. } => {
                campaign = token;
                restored = r;
            }
            client::Frame::Cell(summary) => lab.restore(summary),
            client::Frame::CellError { experiment, error } => {
                let what = experiment.map_or_else(|| "<unknown cell>".to_owned(), |e| e.to_string());
                failures.push(format!("{what}: {error}"));
            }
            client::Frame::Done { cells, completed, failed, .. } => {
                eprintln!(
                    "campaign {campaign}: {completed}/{cells} cells \
                     ({restored} restored, {failed} failed)"
                );
                done = true;
            }
            client::Frame::Saturated { retry_after_ms } => {
                return Err(ArgsError(format!(
                    "daemon saturated; retry in {retry_after_ms}ms"
                )));
            }
            client::Frame::Draining { campaign, completed, remaining } => {
                return Err(ArgsError(format!(
                    "daemon draining after {completed} cell(s) ({remaining} journaled for \
                     later); resubmit after restart to resume campaign {campaign}"
                )));
            }
            client::Frame::DeadlineExceeded { limit_ms, completed, remaining } => {
                return Err(ArgsError(format!(
                    "wall-clock limit of {limit_ms}ms exceeded: {completed} cell(s) \
                     completed, {remaining} remaining (they finish into the daemon cache)"
                )));
            }
            client::Frame::Error { kind, detail } => {
                return Err(ArgsError(format!("daemon rejected request ({kind}): {detail}")));
            }
        }
    }
    if !done {
        return Err(ArgsError(format!(
            "connection to {addr} ended before the campaign finished"
        )));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("cell failed: {f}");
        }
        return Err(ArgsError(format!(
            "{} campaign cell(s) failed; see stderr for details",
            failures.len()
        )));
    }

    // Render exactly what the local commands would have printed: the memo
    // is fully populated, so the exhibits below are pure lookups.
    match workload {
        None => render_paper_grid(&mut lab, out),
        Some(w) => render_sweep(&mut lab, w, layout, args.switch("json"), out),
    }
    Ok(())
}

/// `submit --workers N`: spawn-and-join over a shared state dir. With
/// `N == 0`, join-only — the manifest is published and externally started
/// `serve --worker` processes (possibly on other hosts sharing the
/// directory) drive it. Either way the joiner owns campaign end-of-life:
/// it collects the summaries, compacts the journal, and removes the
/// manifest once the fleet has quiesced.
#[allow(clippy::too_many_arguments)]
fn submit_fleet<W: Write>(
    workers: usize,
    state_dir: &std::path::Path,
    lease_ms: u64,
    request: &client::SubmitRequest,
    mut lab: Lab,
    workload: Option<charlie::Workload>,
    layout: Layout,
    args: &Args,
    out: &mut W,
) -> Result<(), ArgsError> {
    let fail = |e: std::io::Error| ArgsError(e.to_string());
    let m = worker::write_manifest(state_dir, &request.encode()).map_err(fail)?;
    let exe = std::env::current_exe().map_err(fail)?;
    let mut children = Vec::new();
    for i in 0..workers {
        let child = std::process::Command::new(&exe)
            .arg("serve")
            .arg("--worker")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--worker-id")
            .arg(format!("w{}-{}", std::process::id(), i + 1))
            .arg("--lease-ms")
            .arg(lease_ms.to_string())
            .arg("--exit-when-idle")
            // The fleet's stdout stays quiet: this process renders the
            // campaign; worker banners would corrupt byte-identical output.
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(fail)?;
        children.push(child);
    }

    let (mut published, total) = worker::campaign_progress(&m).map_err(fail)?;
    while published < total {
        std::thread::sleep(std::time::Duration::from_millis(100));
        (published, _) = worker::campaign_progress(&m).map_err(fail)?;
        let mut alive = 0;
        for child in children.iter_mut() {
            if matches!(child.try_wait(), Ok(None)) {
                alive += 1;
            }
        }
        if workers > 0 && alive == 0 {
            // Workers may have published the final cell on their way out.
            (published, _) = worker::campaign_progress(&m).map_err(fail)?;
            if published == total {
                break;
            }
            return Err(ArgsError(format!(
                "all {workers} workers exited with {published}/{total} cells published \
                 (campaign {} remains resumable)",
                m.token
            )));
        }
    }

    let summaries = worker::collect(&m).map_err(fail)?;
    for (exp, summary) in m.cells.iter().zip(summaries) {
        match summary {
            Some(s) => lab.restore(s),
            None => return Err(ArgsError(format!("cell {exp} missing after completion"))),
        }
    }
    // Quiesce before compacting: idle workers exit on their own once the
    // grid is published; anything wedged is killed rather than left to
    // race the compaction rename.
    let patience = std::time::Instant::now();
    for mut child in children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if patience.elapsed() < std::time::Duration::from_secs(10) => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
    worker::finalize(&m).map_err(fail)?;
    eprintln!("campaign {}: {total}/{total} cells (fleet of {workers})", m.token);

    match workload {
        None => render_paper_grid(&mut lab, out),
        Some(w) => render_sweep(&mut lab, w, layout, args.switch("json"), out),
    }
    Ok(())
}

/// The `all_experiments` stdout, byte-for-byte.
fn render_paper_grid<W: Write>(lab: &mut Lab, out: &mut W) {
    let c = *lab.config();
    let _ = writeln!(
        out,
        "== all experiments — {} procs, {} refs/proc, seed {:#x} ==\n",
        c.procs, c.refs_per_proc, c.seed
    );
    let _ = writeln!(out, "{}", exhibits::table1(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::figure1(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::table2(lab));
    let _ = writeln!(out);
    for panel in exhibits::figure2(lab) {
        let _ = writeln!(out, "{panel}");
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "{}", exhibits::figure3(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::table3(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::table4(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::table5(lab));
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", exhibits::processor_utilization(lab));
}

/// The `charlie sweep` stdout, byte-for-byte.
fn render_sweep<W: Write>(
    lab: &mut Lab,
    workload: charlie::Workload,
    layout: Layout,
    json: bool,
    out: &mut W,
) {
    if json {
        let mut rows = Vec::new();
        for s in Strategy::PREFETCHING {
            for lat in BusConfig::PAPER_SWEEP {
                let mut exp = Experiment::paper(workload, s, lat);
                if layout == Layout::Padded {
                    exp = exp.restructured();
                }
                let rel = lab.relative_time(exp);
                rows.push(format!(
                    "{{\"strategy\":\"{}\",\"transfer\":{lat},\"relative_time\":{rel:.6}}}",
                    s.name()
                ));
            }
        }
        let _ = writeln!(out, "[{}]", rows.join(","));
    } else {
        let table = exhibits::figure2_for(lab, workload);
        let _ = writeln!(out, "{table}");
    }
}
