//! A dependency-free `--flag value` argument parser.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand, positional arguments and
/// `--key value` / `--switch` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// First non-flag token.
    pub command: Option<String>,
    /// Remaining non-flag tokens.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Error produced while parsing or interpreting arguments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Known boolean switches (flags that take no value).
const SWITCHES: &[&str] = &[
    "json", "csv", "help", "check", "quick", "stats", "ping", "shutdown", "sampled", "worker",
    "exit-when-idle",
];

impl Args {
    /// Parses a raw token stream (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if a non-switch flag is missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgsError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgsError(format!("--{name} requires a value")))?;
                    args.options.insert(name.to_owned(), value);
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// `true` when the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Errors on any option not in `allowed` (catches typos).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] naming the unknown option.
    pub fn expect_known(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgsError(format!(
                    "unknown option --{key} (expected one of: {})",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_options_and_switches() {
        let a = parse(&["run", "--workload", "mp3d", "--json", "--transfer", "8"]);
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("workload"), Some("mp3d"));
        assert_eq!(a.get_or("transfer", 4u64).unwrap(), 8);
        assert!(a.switch("json"));
        assert!(!a.switch("csv"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["run"]);
        assert_eq!(a.get_or("transfer", 8u64).unwrap(), 8);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(vec!["run".into(), "--workload".into()]).unwrap_err();
        assert!(err.0.contains("requires a value"));
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = parse(&["run", "--transfer", "eight"]);
        assert!(a.get_or("transfer", 8u64).is_err());
    }

    #[test]
    fn unknown_option_detected() {
        let a = parse(&["run", "--wrokload", "mp3d"]);
        let err = a.expect_known(&["workload"]).unwrap_err();
        assert!(err.0.contains("--wrokload"));
    }

    #[test]
    fn positionals_collected() {
        let a = parse(&["experiments", "table2", "figure2"]);
        assert_eq!(a.positional, vec!["table2", "figure2"]);
    }
}
